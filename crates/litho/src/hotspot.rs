//! Lithographic hotspot detection: bridging and necking.
//!
//! Sawicki: computational lithography must deliver "viable yield" — which
//! operationally means scanning the layout for patterns that print wrong.
//! Two classic failure modes are checked here by simulating 1-D
//! cross-sections through feature pairs with the aerial-image model:
//!
//! * **bridge** — the space between two neighbouring features prints shut;
//! * **neck** — a feature prints narrower than a survivable fraction of its
//!   drawn width.
//!
//! Multi-patterning is the fix the panel describes: after decomposition,
//! same-mask neighbours sit at least a full pitch apart, and the per-mask
//! hotspot scan comes back clean.

use crate::aerial::OpticalModel;
use crate::coloring::Decomposition;
use crate::geom::{Layout, Rect};

/// A detected printability hotspot.
#[derive(Debug, Clone, PartialEq)]
pub enum Hotspot {
    /// Features `a` and `b` (indices into the layout) print merged.
    Bridge {
        /// First feature index.
        a: usize,
        /// Second feature index.
        b: usize,
        /// Drawn gap between them, nm.
        gap_nm: f64,
    },
    /// Feature `index` prints narrower than `printed_nm` against a drawn
    /// width of `drawn_nm`.
    Neck {
        /// Feature index.
        index: usize,
        /// Printed width, nm.
        printed_nm: f64,
        /// Drawn width, nm.
        drawn_nm: f64,
    },
    /// Feature `index` fails to print at all.
    Missing {
        /// Feature index.
        index: usize,
    },
}

/// Hotspot-scan configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotspotConfig {
    /// Neighbour search radius, nm (pairs farther apart are safe).
    pub search_radius_nm: f64,
    /// A printed width below this fraction of drawn width is a neck.
    pub neck_fraction: f64,
}

impl Default for HotspotConfig {
    fn default() -> Self {
        HotspotConfig { search_radius_nm: 200.0, neck_fraction: 0.6 }
    }
}

/// The 1-D cross-section of a feature perpendicular to its long axis,
/// `(position, width)` along the section line.
fn cross_section(r: &Rect) -> (f64, f64) {
    if r.width() >= r.height() {
        (r.y0, r.height())
    } else {
        (r.x0, r.width())
    }
}

/// Whether two features are roughly parallel neighbours (long axes aligned).
fn parallel(a: &Rect, b: &Rect) -> bool {
    (a.width() >= a.height()) == (b.width() >= b.height())
}

/// Scans a single-exposure layout for printability hotspots.
pub fn find_hotspots(layout: &Layout, model: &OpticalModel, cfg: &HotspotConfig) -> Vec<Hotspot> {
    let mut out = Vec::new();
    let n = layout.features.len();
    // Per-feature isolated print check (necking/missing).
    for (i, r) in layout.features.iter().enumerate() {
        let (pos, width) = cross_section(r);
        let margin = 4.0 * model.sigma_nm() + 50.0;
        let mask = vec![(margin, margin + width)];
        let printed = model.print(&mask, 2.0 * margin + width);
        let _ = pos;
        match printed.first() {
            None => out.push(Hotspot::Missing { index: i }),
            Some(&(p0, p1)) => {
                let w = p1 - p0;
                if w < cfg.neck_fraction * width {
                    out.push(Hotspot::Neck { index: i, printed_nm: w, drawn_nm: width });
                }
            }
        }
    }
    // Pairwise bridge check for parallel neighbours.
    for i in 0..n {
        for j in i + 1..n {
            let (a, b) = (&layout.features[i], &layout.features[j]);
            let gap = a.gap(b);
            if gap <= 0.0 || gap > cfg.search_radius_nm || !parallel(a, b) {
                continue;
            }
            let (_, wa) = cross_section(a);
            let (_, wb) = cross_section(b);
            let margin = 4.0 * model.sigma_nm() + 50.0;
            let mask = vec![
                (margin, margin + wa),
                (margin + wa + gap, margin + wa + gap + wb),
            ];
            let extent = 2.0 * margin + wa + gap + wb;
            let printed = model.print(&mask, extent);
            // Fewer than two printed intervals means the pair merged (one
            // blob) or proximity destroyed both — either way, a bridge-class
            // failure between these neighbours.
            if printed.len() < 2 {
                out.push(Hotspot::Bridge { a: i, b: j, gap_nm: gap });
            }
        }
    }
    out
}

/// Scans each mask of a decomposition separately; returns hotspots per mask.
///
/// The panel's multi-patterning story in one function: conflicts that would
/// bridge in a single exposure land on different masks and disappear.
pub fn find_hotspots_per_mask(
    deco: &Decomposition,
    model: &OpticalModel,
    cfg: &HotspotConfig,
) -> Vec<Vec<Hotspot>> {
    let masks = deco.masks.max(1);
    (0..masks)
        .map(|m| {
            let sub = Layout {
                features: deco
                    .layout
                    .features
                    .iter()
                    .zip(&deco.colors)
                    .filter(|&(_, &c)| c == m)
                    .map(|(r, _)| *r)
                    .collect(),
            };
            find_hotspots(&sub, model, cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::decompose;

    fn model() -> OpticalModel {
        OpticalModel::default()
    }

    #[test]
    fn isolated_wide_lines_are_clean() {
        let layout = Layout::line_array(4, 300.0, 2000.0);
        let hs = find_hotspots(&layout, &model(), &HotspotConfig::default());
        assert!(hs.is_empty(), "300nm pitch prints clean, got {hs:?}");
    }

    #[test]
    fn dense_lines_bridge() {
        // 56nm pitch: 28nm lines with 28nm spaces — far below the
        // single-exposure floor, spaces print shut.
        let layout = Layout::line_array(4, 56.0, 2000.0);
        let hs = find_hotspots(&layout, &model(), &HotspotConfig::default());
        assert!(
            hs.iter().any(|h| matches!(h, Hotspot::Bridge { .. } | Hotspot::Missing { .. } | Hotspot::Neck { .. })),
            "56nm pitch must produce printability hotspots"
        );
    }

    #[test]
    fn narrow_feature_necks_or_vanishes() {
        let mut layout = Layout::new();
        layout.features.push(Rect::new(0.0, 0.0, 2000.0, 18.0)); // 18nm line
        let hs = find_hotspots(&layout, &model(), &HotspotConfig::default());
        assert!(
            hs.iter().any(|h| matches!(h, Hotspot::Neck { .. } | Hotspot::Missing { .. })),
            "an 18nm drawn line cannot print true: {hs:?}"
        );
    }

    #[test]
    fn decomposition_clears_bridge_hotspots() {
        // 34nm lines with 16nm gaps: the narrow space prints shut in one
        // exposure (bridge). After double patterning, same-mask neighbours
        // sit 66nm apart and the space opens cleanly.
        let mut layout = Layout::new();
        for i in 0..6 {
            let x = i as f64 * 50.0;
            layout.features.push(Rect::new(x, 0.0, x + 34.0, 2000.0));
        }
        let single = find_hotspots(&layout, &model(), &HotspotConfig::default());
        let bridges_before =
            single.iter().filter(|h| matches!(h, Hotspot::Bridge { .. })).count();
        assert!(bridges_before > 0, "16nm gaps must bridge in a single exposure: {single:?}");
        let deco = decompose(&layout, 2, 80.0, 0);
        assert!(deco.legal, "alternating lines are 2-colourable");
        let per_mask = find_hotspots_per_mask(&deco, &model(), &HotspotConfig::default());
        let bridges_after: usize = per_mask
            .iter()
            .flatten()
            .filter(|h| matches!(h, Hotspot::Bridge { .. }))
            .count();
        assert_eq!(bridges_after, 0, "decomposed masks must print bridge-free: {per_mask:?}");
    }

    #[test]
    fn search_radius_limits_pairs() {
        let layout = Layout::line_array(3, 500.0, 1000.0);
        let tight = HotspotConfig { search_radius_nm: 10.0, ..Default::default() };
        let hs = find_hotspots(&layout, &model(), &tight);
        assert!(hs.is_empty());
    }
}
