//! Computational lithography for the `eda` workspace: multi-patterning
//! layout decomposition (conflict-graph colouring with stitch insertion) and
//! aerial-image simulation with model-based OPC.
//!
//! Two panel claims live here: Domic's multi-patterning progression
//! (claim C4 — single-exposure pitch floor near 80 nm, double/triple/
//! quadruple at 20 nm and below, octuple at 5 nm without EUV) and Sawicki's
//! computational-lithography enablement (claim C15 — OPC recovering edge
//! placement down to, but not past, the single-exposure resolution limit).
//!
//! # Examples
//!
//! ```
//! use eda_litho::{decompose, Layout};
//!
//! // A 40nm-pitch line array under an 80nm same-mask rule: double patterning.
//! let layout = Layout::line_array(10, 40.0, 2000.0);
//! let d = decompose(&layout, 2, 80.0, 0);
//! assert!(d.legal);
//! assert_eq!(d.masks, 2);
//! ```

pub mod aerial;
pub mod coloring;
pub mod geom;
pub mod hotspot;
pub mod opc;

pub use aerial::{edge_placement_errors, edge_placement_errors_threaded, rms, OpticalModel};
pub use coloring::{decompose, required_masks, ConflictGraph, Decomposition};
pub use geom::{Layout, Rect};
pub use hotspot::{find_hotspots, find_hotspots_per_mask, Hotspot, HotspotConfig};
pub use opc::{run_opc, run_opc_stats, OpcConfig, OpcOutcome};
