//! 1-D aerial-image simulation with a Gaussian point-spread kernel and a
//! constant-threshold resist model.
//!
//! Sawicki (claim C15): *"computational lithography has been one of the
//! primary enablers of feature scaling in the absence of EUV."* The optical
//! system here is a 193 nm-immersion-class projector: the kernel width is set
//! by λ/NA, so gratings below the ~80 nm single-exposure pitch lose contrast
//! and cannot print — exactly the regime where OPC (and eventually
//! multi-patterning) must step in.

/// The imaging system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpticalModel {
    /// Wavelength in nm (193 for ArF).
    pub lambda_nm: f64,
    /// Numerical aperture (1.35 for immersion).
    pub na: f64,
    /// Resist threshold in normalized intensity [0, 1].
    pub threshold: f64,
    /// Simulation sample step in nm.
    pub step_nm: f64,
}

impl Default for OpticalModel {
    fn default() -> Self {
        OpticalModel { lambda_nm: 193.0, na: 1.35, threshold: 0.5, step_nm: 1.0 }
    }
}

impl OpticalModel {
    /// Gaussian kernel sigma: σ ≈ 0.14 · λ / NA (calibrated so grating
    /// contrast collapses just below the ~80 nm single-exposure pitch).
    pub fn sigma_nm(&self) -> f64 {
        0.14 * self.lambda_nm / self.na
    }

    /// Simulates printing of a 1-D mask.
    ///
    /// `mask` gives `(start, end)` transparent intervals in nm over
    /// `[0, extent_nm]`. Returns the printed intervals after thresholding.
    pub fn print(&self, mask: &[(f64, f64)], extent_nm: f64) -> Vec<(f64, f64)> {
        let image = self.image(mask, extent_nm);
        self.threshold_image(&image)
    }

    /// [`print`](Self::print) with the convolution spread over `threads`
    /// workers (`0` = all cores).
    pub fn print_threaded(
        &self,
        mask: &[(f64, f64)],
        extent_nm: f64,
        threads: usize,
    ) -> (Vec<(f64, f64)>, eda_par::ParStats) {
        let (image, stats) = self.image_threaded(mask, extent_nm, threads);
        (self.threshold_image(&image), stats)
    }

    /// The sampled aerial image for a mask.
    pub fn image(&self, mask: &[(f64, f64)], extent_nm: f64) -> Vec<f64> {
        self.image_threaded(mask, extent_nm, 1).0
    }

    /// [`image`](Self::image) with the sample axis chunked across `threads`
    /// workers. Each output sample is an independent kernel dot product over
    /// the shared rasterized mask, and chunks reassemble in sample order, so
    /// the image is bit-identical for any thread count.
    pub fn image_threaded(
        &self,
        mask: &[(f64, f64)],
        extent_nm: f64,
        threads: usize,
    ) -> (Vec<f64>, eda_par::ParStats) {
        let n = (extent_nm / self.step_nm).ceil() as usize + 1;
        let sigma = self.sigma_nm();
        let half = (4.0 * sigma / self.step_nm).ceil() as i64;
        // Precompute the kernel CDF-difference per sample via erf-free
        // discrete Gaussian (normalized).
        let mut kernel = Vec::with_capacity((2 * half + 1) as usize);
        let mut ksum = 0.0;
        for k in -half..=half {
            let x = k as f64 * self.step_nm / sigma;
            let v = (-0.5 * x * x).exp();
            kernel.push(v);
            ksum += v;
        }
        for v in &mut kernel {
            *v /= ksum;
        }
        // Rasterize the mask.
        let mut m = vec![0.0f64; n];
        for &(a, b) in mask {
            let i0 = ((a / self.step_nm).round().max(0.0) as usize).min(n - 1);
            let i1 = ((b / self.step_nm).round().max(0.0) as usize).min(n - 1);
            for s in &mut m[i0..=i1] {
                *s = 1.0;
            }
        }
        // Convolve, chunked over the sample axis.
        let (chunks, stats) =
            eda_par::par_chunks_stats(threads, n, eda_par::default_chunk(n), |range| {
                range
                    .map(|i| {
                        let mut acc = 0.0;
                        for (ki, k) in (-half..=half).enumerate() {
                            let j = i as i64 + k;
                            if j >= 0 && (j as usize) < n {
                                acc += m[j as usize] * kernel[ki];
                            }
                        }
                        acc
                    })
                    .collect::<Vec<f64>>()
            });
        let mut img = Vec::with_capacity(n);
        for c in chunks {
            img.extend(c);
        }
        (img, stats)
    }

    /// Thresholds a sampled image into printed intervals.
    pub fn threshold_image(&self, image: &[f64]) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        let mut start: Option<f64> = None;
        for (i, &v) in image.iter().enumerate() {
            let x = i as f64 * self.step_nm;
            if v >= self.threshold && start.is_none() {
                start = Some(x);
            }
            if v < self.threshold {
                if let Some(s) = start.take() {
                    out.push((s, x - self.step_nm));
                }
            }
        }
        if let Some(s) = start {
            out.push((s, (image.len() - 1) as f64 * self.step_nm));
        }
        out
    }

    /// Image contrast for a periodic grating: `(Imax - Imin)/(Imax + Imin)`
    /// computed from a long line array at the given pitch.
    pub fn grating_contrast(&self, pitch_nm: f64) -> f64 {
        let lines = 12;
        let extent = pitch_nm * lines as f64;
        let mask: Vec<(f64, f64)> = (0..lines)
            .map(|i| (i as f64 * pitch_nm, i as f64 * pitch_nm + pitch_nm / 2.0))
            .collect();
        let img = self.image(&mask, extent);
        // Ignore the boundary third on each side.
        let lo = img.len() / 3;
        let hi = 2 * img.len() / 3;
        let (mut imax, mut imin) = (0.0f64, f64::INFINITY);
        for &v in &img[lo..hi] {
            imax = imax.max(v);
            imin = imin.min(v);
        }
        if imax + imin == 0.0 {
            0.0
        } else {
            (imax - imin) / (imax + imin)
        }
    }
}

/// Edge-placement errors of printed intervals against target intervals, in
/// nm. Each target edge is matched to the nearest printed edge; unmatched
/// targets get an error equal to half the target width (missing feature).
pub fn edge_placement_errors(target: &[(f64, f64)], printed: &[(f64, f64)]) -> Vec<f64> {
    edge_placement_errors_threaded(target, printed, 1)
}

/// [`edge_placement_errors`] with the per-fragment evaluation partitioned
/// across `threads` workers. Each fragment's two edge errors depend only on
/// that fragment and the shared printed contours, and the flattened result
/// keeps fragment order, so the field is bit-identical for any thread count.
pub fn edge_placement_errors_threaded(
    target: &[(f64, f64)],
    printed: &[(f64, f64)],
    threads: usize,
) -> Vec<f64> {
    let per_fragment = eda_par::par_map(threads, target, |_, &(t0, t1)| {
        let miss = (t1 - t0) / 2.0;
        let e0 = printed
            .iter()
            .map(|&(p0, _)| (p0 - t0).abs())
            .fold(f64::INFINITY, f64::min);
        let e1 = printed
            .iter()
            .map(|&(_, p1)| (p1 - t1).abs())
            .fold(f64::INFINITY, f64::min);
        [
            if e0.is_finite() { e0.min(miss) } else { miss },
            if e1.is_finite() { e1.min(miss) } else { miss },
        ]
    });
    let mut errors = Vec::with_capacity(target.len() * 2);
    for pair in per_fragment {
        errors.extend(pair);
    }
    errors
}

/// Root-mean-square of a set of EPEs.
pub fn rms(errors: &[f64]) -> f64 {
    if errors.is_empty() {
        return 0.0;
    }
    (errors.iter().map(|e| e * e).sum::<f64>() / errors.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_big_feature_prints_accurately() {
        let m = OpticalModel::default();
        let target = vec![(200.0, 600.0)];
        let printed = m.print(&target, 800.0);
        assert_eq!(printed.len(), 1);
        let epe = edge_placement_errors(&target, &printed);
        assert!(rms(&epe) < 5.0, "large isolated feature should print true, rms={}", rms(&epe));
    }

    #[test]
    fn contrast_collapses_below_single_exposure_pitch() {
        let m = OpticalModel::default();
        let c120 = m.grating_contrast(120.0);
        let c80 = m.grating_contrast(80.0);
        let c50 = m.grating_contrast(50.0);
        assert!(c120 > c80 && c80 > c50, "contrast must fall with pitch");
        assert!(c120 > 0.5, "120nm pitch is comfortably printable, got {c120}");
        assert!(c50 < 0.15, "50nm pitch has no single-exposure contrast, got {c50}");
    }

    #[test]
    fn sub_resolution_grating_does_not_resolve() {
        let m = OpticalModel::default();
        let pitch = 40.0;
        let mask: Vec<(f64, f64)> = (0..10).map(|i| {
            let x = 200.0 + i as f64 * pitch;
            (x, x + pitch / 2.0)
        }).collect();
        let printed = m.print(&mask, 1000.0);
        assert!(
            printed.len() < 10,
            "40nm-pitch lines must merge/vanish in a single exposure, got {}",
            printed.len()
        );
    }

    #[test]
    fn epe_of_perfect_print_is_zero() {
        let target = vec![(100.0, 200.0), (300.0, 400.0)];
        let epe = edge_placement_errors(&target, &target);
        assert!(epe.iter().all(|&e| e == 0.0));
        assert_eq!(rms(&epe), 0.0);
    }

    #[test]
    fn missing_feature_charged_half_width() {
        let target = vec![(100.0, 160.0)];
        let epe = edge_placement_errors(&target, &[]);
        assert_eq!(epe, vec![30.0, 30.0]);
    }

    #[test]
    fn threaded_image_is_bit_identical() {
        let m = OpticalModel::default();
        let mask: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let x = 100.0 + i as f64 * 130.0;
                (x, x + 65.0)
            })
            .collect();
        let serial = m.image(&mask, 3000.0);
        for threads in [2, 4, 8] {
            let (par, _) = m.image_threaded(&mask, 3000.0, threads);
            assert_eq!(par.len(), serial.len());
            for (i, (a, b)) in serial.iter().zip(&par).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "sample {i}, threads={threads}");
            }
        }
        let printed = m.print(&mask, 3000.0);
        let epe_serial = edge_placement_errors(&mask, &printed);
        for threads in [2, 8] {
            let epe_par = edge_placement_errors_threaded(&mask, &printed, threads);
            assert_eq!(epe_serial.len(), epe_par.len());
            for (a, b) in epe_serial.iter().zip(&epe_par) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn threshold_image_finds_intervals() {
        let m = OpticalModel::default();
        let img = vec![0.0, 0.2, 0.6, 0.9, 0.7, 0.3, 0.1, 0.6, 0.8, 0.2];
        let iv = m.threshold_image(&img);
        assert_eq!(iv.len(), 2);
        assert_eq!(iv[0], (2.0, 4.0));
        assert_eq!(iv[1], (7.0, 8.0));
    }
}
