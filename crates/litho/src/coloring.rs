//! Multi-patterning layout decomposition: conflict graph construction,
//! DSATUR/backtracking k-colouring, and stitch insertion.
//!
//! Domic (claim C4): *"starting at 20 nanometers, it has become impossible to
//! draw the copper interconnects of an IC without double-, triple-, or even
//! quadruple-patterning... advanced EDA has made multi-patterning automated,
//! hiding and waiving its complexity."* This module is that automation.

use crate::geom::{Layout, Rect};

/// The conflict graph of a layout under a same-mask pitch rule.
#[derive(Debug, Clone, PartialEq)]
pub struct ConflictGraph {
    /// Number of features (nodes).
    pub nodes: usize,
    /// Adjacency lists.
    adj: Vec<Vec<u32>>,
}

impl ConflictGraph {
    /// Builds the graph under a single-exposure *pitch* limit: two features
    /// conflict when their edge gap is below `limit_pitch_nm` minus half of
    /// each feature's line width (equivalently, their line pitch is below
    /// the limit). This matches the panel's "minimum single-patterning pitch
    /// of approximately 80 nanometers".
    pub fn build(layout: &Layout, limit_pitch_nm: f64) -> ConflictGraph {
        let n = layout.features.len();
        let mut adj = vec![Vec::new(); n];
        let half_width =
            |r: &crate::geom::Rect| -> f64 { r.width().min(r.height()) / 2.0 };
        for i in 0..n {
            for j in i + 1..n {
                let a = &layout.features[i];
                let b = &layout.features[j];
                let spacing_limit = (limit_pitch_nm - half_width(a) - half_width(b)).max(1.0);
                if a.gap(b) < spacing_limit {
                    adj[i].push(j as u32);
                    adj[j].push(i as u32);
                }
            }
        }
        ConflictGraph { nodes: n, adj }
    }

    /// Number of conflict edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum::<usize>() / 2
    }

    /// Neighbours of a node.
    pub fn neighbours(&self, v: usize) -> &[u32] {
        &self.adj[v]
    }

    /// Whether the graph contains an odd cycle (i.e. is not 2-colourable).
    pub fn has_odd_cycle(&self) -> bool {
        let mut color = vec![-1i8; self.nodes];
        for start in 0..self.nodes {
            if color[start] != -1 {
                continue;
            }
            color[start] = 0;
            let mut stack = vec![start];
            while let Some(v) = stack.pop() {
                for &w in &self.adj[v] {
                    let w = w as usize;
                    if color[w] == -1 {
                        color[w] = 1 - color[v];
                        stack.push(w);
                    } else if color[w] == color[v] {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// DSATUR greedy colouring; returns per-node colours (count may exceed
    /// the chromatic number).
    pub fn dsatur(&self) -> Vec<u32> {
        let n = self.nodes;
        let mut color = vec![u32::MAX; n];
        let mut sat: Vec<std::collections::BTreeSet<u32>> = vec![Default::default(); n];
        for _ in 0..n {
            // Pick the uncoloured node with maximum saturation (ties: degree).
            let v = (0..n)
                .filter(|&v| color[v] == u32::MAX)
                .max_by_key(|&v| (sat[v].len(), self.adj[v].len()))
                .expect("an uncoloured node remains");
            let mut c = 0u32;
            while sat[v].contains(&c) {
                c += 1;
            }
            color[v] = c;
            for &w in &self.adj[v] {
                sat[w as usize].insert(c);
            }
        }
        color
    }

    /// Exact k-colourability via backtracking with a node budget; `None`
    /// means the budget ran out (treat as failure).
    pub fn k_color(&self, k: u32, budget: usize) -> Option<Option<Vec<u32>>> {
        let n = self.nodes;
        let mut color = vec![u32::MAX; n];
        // Order by degree descending for better pruning.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(self.adj[v].len()));
        let mut steps = 0usize;
        fn rec(
            g: &ConflictGraph,
            order: &[usize],
            pos: usize,
            k: u32,
            color: &mut Vec<u32>,
            steps: &mut usize,
            budget: usize,
        ) -> Option<bool> {
            if *steps > budget {
                return None;
            }
            *steps += 1;
            if pos == order.len() {
                return Some(true);
            }
            let v = order[pos];
            // Symmetry breaking: limit to used colours + 1.
            let used = color.iter().filter(|&&c| c != u32::MAX).fold(0u32, |m, &c| m.max(c + 1));
            for c in 0..k.min(used + 1) {
                if g.adj[v].iter().any(|&w| color[w as usize] == c) {
                    continue;
                }
                color[v] = c;
                match rec(g, order, pos + 1, k, color, steps, budget) {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => return None,
                }
                color[v] = u32::MAX;
            }
            Some(false)
        }
        match rec(self, &order, 0, k, &mut color, &mut steps, budget) {
            None => None,
            Some(true) => Some(Some(color)),
            Some(false) => Some(None),
        }
    }
}

/// Result of decomposing a layout into masks.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// The (possibly stitched) layout actually coloured.
    pub layout: Layout,
    /// Mask assignment per feature of `layout`.
    pub colors: Vec<u32>,
    /// Number of masks used.
    pub masks: u32,
    /// Stitches inserted (features split).
    pub stitches: usize,
    /// Whether the decomposition is conflict-free.
    pub legal: bool,
}

/// Decomposes a layout for `k`-patterning with up to `max_stitches` stitch
/// insertions. Features that cannot be coloured are split at legal stitch
/// points and recoloured.
pub fn decompose(layout: &Layout, k: u32, limit_pitch_nm: f64, max_stitches: usize) -> Decomposition {
    let mut work = layout.clone();
    let mut stitches = 0usize;
    loop {
        let g = ConflictGraph::build(&work, limit_pitch_nm);
        // Try exact first (small budget), fall back to DSATUR.
        if let Some(Some(colors)) = g.k_color(k, 200_000) {
            let masks = colors.iter().copied().max().map_or(0, |m| m + 1);
            return Decomposition { layout: work, colors, masks, stitches, legal: true };
        }
        let colors = g.dsatur();
        let masks = colors.iter().copied().max().map_or(0, |m| m + 1);
        if masks <= k {
            return Decomposition { layout: work, colors, masks, stitches, legal: true };
        }
        if stitches >= max_stitches {
            // Report the best (illegal) colouring, clamped to k masks.
            let legal = false;
            let clamped: Vec<u32> = colors.iter().map(|&c| c.min(k - 1)).collect();
            return Decomposition { layout: work, colors: clamped, masks: k, stitches, legal };
        }
        // Split the largest feature that received an over-budget colour.
        let victim = colors
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= k)
            .max_by(|a, b| {
                let ra = &work.features[a.0];
                let rb = &work.features[b.0];
                (ra.width() * ra.height())
                    .partial_cmp(&(rb.width() * rb.height()))
                    .expect("areas are finite")
            })
            .map(|(i, _)| i)
            .expect("masks > k implies an over-budget feature");
        let r: Rect = work.features.remove(victim);
        let (a, b) = r.split(limit_pitch_nm / 16.0);
        work.features.push(a);
        work.features.push(b);
        stitches += 1;
    }
}

/// Minimum masks (per DSATUR upper bound tightened with exact search) for a
/// layout — the empirical analogue of [`eda_tech::PatterningPlan`].
pub fn required_masks(layout: &Layout, limit_pitch_nm: f64) -> u32 {
    let g = ConflictGraph::build(layout, limit_pitch_nm);
    let upper = g.dsatur().iter().copied().max().map_or(0, |m| m + 1);
    // Tighten from below.
    for k in 1..upper {
        if let Some(Some(_)) = g.k_color(k, 100_000) {
            return k;
        }
    }
    upper
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_array_chromatic_number_matches_pitch_model() {
        // Same-mask limit 80nm: pitch 64 -> 2 masks, pitch 40 -> 2, pitch 30 -> 3.
        for (pitch, expect) in [(100.0, 1u32), (64.0, 2), (40.0, 2), (30.0, 3), (24.0, 4)] {
            let l = Layout::line_array(12, pitch, 2000.0);
            let masks = required_masks(&l, 80.0);
            assert_eq!(masks, expect, "pitch {pitch}");
        }
    }

    #[test]
    fn dsatur_produces_proper_coloring() {
        let l = Layout::random_wires(60, 48.0, 3000.0, 3);
        let g = ConflictGraph::build(&l, 80.0);
        let colors = g.dsatur();
        for v in 0..g.nodes {
            for &w in g.neighbours(v) {
                assert_ne!(colors[v], colors[w as usize], "conflict edge shares a colour");
            }
        }
    }

    #[test]
    fn odd_cycle_detection() {
        // Three mutually-close contacts form a triangle: odd cycle.
        let mut l = Layout::new();
        l.features.push(Rect::new(0.0, 0.0, 20.0, 20.0));
        l.features.push(Rect::new(40.0, 0.0, 60.0, 20.0));
        l.features.push(Rect::new(20.0, 35.0, 40.0, 55.0));
        let g = ConflictGraph::build(&l, 50.0);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_odd_cycle());
        // Two features only: even.
        let mut l2 = Layout::new();
        l2.features.push(Rect::new(0.0, 0.0, 20.0, 20.0));
        l2.features.push(Rect::new(40.0, 0.0, 60.0, 20.0));
        assert!(!ConflictGraph::build(&l2, 50.0).has_odd_cycle());
    }

    #[test]
    fn exact_kcolor_agrees_with_bipartiteness() {
        let l = Layout::line_array(10, 60.0, 1000.0);
        let g = ConflictGraph::build(&l, 80.0);
        let two = g.k_color(2, 100_000).expect("budget generous");
        assert_eq!(two.is_some(), !g.has_odd_cycle());
    }

    #[test]
    fn stitches_resolve_triangle_conflicts() {
        // A triangle needs 3 masks; with stitching, 2 masks become feasible
        // when one feature is split so its halves take different masks.
        let mut l = Layout::new();
        l.features.push(Rect::new(0.0, 0.0, 200.0, 20.0)); // long wire (splittable)
        l.features.push(Rect::new(0.0, 50.0, 90.0, 70.0));
        l.features.push(Rect::new(110.0, 50.0, 200.0, 70.0));
        // All three pairwise within 80nm? wire-to-upper gaps = 30nm; upper pair gap = 20nm.
        let d = decompose(&l, 2, 80.0, 4);
        assert!(d.stitches >= 1, "triangle needs a stitch for 2 masks");
        if d.legal {
            let g = ConflictGraph::build(&d.layout, 80.0);
            for v in 0..g.nodes {
                for &w in g.neighbours(v) {
                    assert_ne!(d.colors[v], d.colors[w as usize]);
                }
            }
            assert!(d.masks <= 2);
        }
    }

    #[test]
    fn decompose_reports_illegal_when_hopeless() {
        // A 5-clique of contacts cannot be 2-coloured even with stitches off.
        let l = Layout::contact_array(3, 50.0);
        let d = decompose(&l, 2, 200.0, 0);
        assert!(!d.legal);
        assert_eq!(d.masks, 2, "clamped to the mask budget");
    }

    #[test]
    fn required_masks_monotone_in_spacing() {
        let l = Layout::contact_array(4, 60.0);
        let loose = required_masks(&l, 61.0);
        let tight = required_masks(&l, 130.0);
        assert!(tight >= loose);
    }
}
