//! Logic synthesis for the `eda` workspace: truth tables, two-level
//! (Espresso-style) minimization, and-inverter graphs, and cut-based
//! technology mapping.
//!
//! The crate reproduces the synthesis story the DATE 2016 panel tells:
//! Macii's lineage from Espresso/MIS/SIS ([`espresso`]), Domic's decade of
//! RTL-synthesis improvement ([`synthesize`] with its two effort presets),
//! and De Micheli's functionality-enhanced devices (mapping onto the
//! controlled-polarity library).
//!
//! # Examples
//!
//! ```
//! use eda_logic::{synthesize, MapGoal, SynthesisEffort};
//! use eda_netlist::{generate, Library};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = generate::parity_tree(16)?;
//! let out = synthesize(&design, Library::generic(),
//!                      SynthesisEffort::Advanced2016, MapGoal::Area)?;
//! assert!(out.area_um2 > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod aig;
pub mod bdd;
pub mod cube;
pub mod ec;
pub mod espresso;
pub mod isop;
pub mod map;
pub mod npn;
pub mod synth;
pub mod tt;

pub use aig::{Aig, AigError, FlopBoundary, Lit, SeqBoundary};
pub use bdd::{BddManager, BddRef};
pub use ec::{check_equivalence, EcError, EcVerdict};
pub use cube::{Cover, Cube};
pub use espresso::MinimizeOutcome;
pub use isop::isop;
pub use map::{map_aig, map_aig_threaded, map_naive, MapError, MapGoal, MapOutcome};
pub use npn::{npn_canon, npn_equivalent, NpnCanon};
pub use synth::{
    optimize_aig, optimize_aig_scripted, optimize_aig_traced, synthesize, synthesize_threaded,
    synthesize_threaded_memo, AigPass, SynthesisEffort, SynthesisError, SynthesisOutcome,
    AIG_MEMO_KINDS, DEFAULT_REWRITE_PASSES,
};
pub use tt::TruthTable;
