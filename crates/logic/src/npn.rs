//! NPN canonicalization of small boolean functions.
//!
//! Two functions are NPN-equivalent when one can be obtained from the other
//! by Negating inputs, Permuting inputs, and/or Negating the output. Cut
//! rewriting and library characterization both reason about NPN classes: the
//! 65 536 four-input functions fall into just 222 of them.

use crate::tt::TruthTable;

/// The canonical representative of a function's NPN class, plus the
/// transform that maps the original onto it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NpnCanon {
    /// The class representative (lexicographically smallest truth table).
    pub canon: TruthTable,
    /// Input permutation applied (position `i` of the canon reads original
    /// variable `perm[i]`).
    pub perm: Vec<usize>,
    /// Input negation mask (bit `i` = original variable `perm[i]` negated).
    pub input_neg: u32,
    /// Whether the output was negated.
    pub output_neg: bool,
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn rec(acc: &mut Vec<Vec<usize>>, cur: &mut Vec<usize>, used: &mut Vec<bool>, n: usize) {
        if cur.len() == n {
            acc.push(cur.clone());
            return;
        }
        for i in 0..n {
            if !used[i] {
                used[i] = true;
                cur.push(i);
                rec(acc, cur, used, n);
                cur.pop();
                used[i] = false;
            }
        }
    }
    let mut acc = Vec::new();
    rec(&mut acc, &mut Vec::new(), &mut vec![false; n], n);
    acc
}

/// Applies an input transform: variable `i` of the result reads original
/// variable `perm[i]`, negated when bit `i` of `neg_mask` is set.
fn transform(tt: &TruthTable, perm: &[usize], neg_mask: u32) -> TruthTable {
    let n = tt.num_vars();
    let mut bits = 0u64;
    for row in 0..(1usize << n) {
        // Build the original-variable assignment this transformed row maps to.
        let mut orig_row = 0usize;
        for (i, &p) in perm.iter().enumerate() {
            let bit = (row >> i & 1 == 1) ^ (neg_mask >> i & 1 == 1);
            if bit {
                orig_row |= 1 << p;
            }
        }
        if tt.bits() >> orig_row & 1 == 1 {
            bits |= 1 << row;
        }
    }
    TruthTable::from_bits(n, bits)
}

/// Computes the NPN canonical form by exhaustive search (practical to 5
/// variables).
///
/// # Panics
///
/// Panics if the function has more than 5 variables.
pub fn npn_canon(tt: &TruthTable) -> NpnCanon {
    let n = tt.num_vars();
    assert!(n <= 5, "exhaustive NPN is practical only up to 5 variables");
    let mut best: Option<NpnCanon> = None;
    for perm in permutations(n) {
        for neg in 0..(1u32 << n) {
            let f = transform(tt, &perm, neg);
            for out_neg in [false, true] {
                let candidate = if out_neg { f.not() } else { f };
                let better = best
                    .as_ref()
                    .is_none_or(|b| candidate.bits() < b.canon.bits());
                if better {
                    best = Some(NpnCanon {
                        canon: candidate,
                        perm: perm.clone(),
                        input_neg: neg,
                        output_neg: out_neg,
                    });
                }
            }
        }
    }
    best.expect("search space is non-empty")
}

/// Whether two functions are NPN-equivalent.
pub fn npn_equivalent(a: &TruthTable, b: &TruthTable) -> bool {
    a.num_vars() == b.num_vars() && npn_canon(a).canon == npn_canon(b).canon
}

/// Counts the distinct NPN classes in an iterator of functions.
pub fn count_npn_classes(functions: impl IntoIterator<Item = TruthTable>) -> usize {
    let mut canons = std::collections::HashSet::new();
    for f in functions {
        canons.insert(npn_canon(&f).canon.bits());
    }
    canons.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_variants_share_a_class() {
        let n = 2;
        let a = TruthTable::var(n, 0);
        let b = TruthTable::var(n, 1);
        let and = a.and(&b);
        let nand = and.not();
        let or = a.or(&b);
        let nor = or.not();
        let and_ba = b.and(&a);
        // AND/NAND/OR/NOR are all one NPN class.
        for f in [&nand, &or, &nor, &and_ba] {
            assert!(npn_equivalent(&and, f), "{f} should be NPN-equal to AND");
        }
        // XOR is a different class.
        let xor = a.xor(&b);
        assert!(!npn_equivalent(&and, &xor));
    }

    #[test]
    fn canon_is_idempotent() {
        for raw in [0x8u64, 0x6, 0xE8, 0x96, 0xCA, 0x1B] {
            let f = TruthTable::from_bits(3, raw);
            let c1 = npn_canon(&f);
            let c2 = npn_canon(&c1.canon);
            assert_eq!(c1.canon, c2.canon, "raw {raw:x}");
        }
    }

    #[test]
    fn transform_reconstructs_canon() {
        for raw in [0x8u64, 0x96, 0xE8, 0x2B] {
            let f = TruthTable::from_bits(3, raw);
            let c = npn_canon(&f);
            let rebuilt = {
                let t = transform(&f, &c.perm, c.input_neg);
                if c.output_neg {
                    t.not()
                } else {
                    t
                }
            };
            assert_eq!(rebuilt, c.canon, "raw {raw:x}");
        }
    }

    #[test]
    fn three_var_class_count_is_14() {
        // A classic result: 256 three-input functions fall into 14 NPN classes.
        let all = (0..256u64).map(|b| TruthTable::from_bits(3, b));
        assert_eq!(count_npn_classes(all), 14);
    }

    #[test]
    fn two_var_class_count_is_4() {
        // 16 two-input functions -> 4 NPN classes (const, var, and, xor).
        let all = (0..16u64).map(|b| TruthTable::from_bits(2, b));
        assert_eq!(count_npn_classes(all), 4);
    }

    #[test]
    fn constants_are_their_own_class() {
        let zero = TruthTable::zero(3);
        let one = TruthTable::one(3);
        assert!(npn_equivalent(&zero, &one), "output negation joins them");
        assert_eq!(npn_canon(&zero).canon.bits(), 0);
    }

    #[test]
    #[should_panic(expected = "up to 5 variables")]
    fn six_vars_rejected() {
        let _ = npn_canon(&TruthTable::zero(6));
    }
}
