//! Reduced ordered binary decision diagrams (ROBDDs).
//!
//! The verification substrate behind Domic's requirement that design intent
//! be "always correctly implemented and consistently verified throughout the
//! design flow": BDDs give canonical forms, so combinational equivalence is a
//! pointer comparison. Used by [`crate::ec`] for formal equivalence checking
//! of the synthesis/DFT/power transformations.
//!
//! Classic Bryant construction: a shared unique-table of `(var, low, high)`
//! triples with complement-free nodes, an `ite`-style `apply` with memoization,
//! and a node budget to keep pathological orderings from exploding.

use std::collections::HashMap;

/// A handle to a BDD node in a [`BddManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddRef(u32);

impl BddRef {
    /// The constant-0 node.
    pub const ZERO: BddRef = BddRef(0);
    /// The constant-1 node.
    pub const ONE: BddRef = BddRef(1);
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    low: BddRef,
    high: BddRef,
}

/// Errors from BDD construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BddError {
    /// The node budget was exhausted (ordering blow-up).
    NodeLimit(usize),
}

impl std::fmt::Display for BddError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BddError::NodeLimit(n) => write!(f, "BDD node limit of {n} exhausted"),
        }
    }
}

impl std::error::Error for BddError {}

/// A shared BDD store.
///
/// # Examples
///
/// ```
/// use eda_logic::bdd::{BddManager, BddRef};
///
/// # fn main() -> Result<(), eda_logic::bdd::BddError> {
/// let mut m = BddManager::new(1 << 20);
/// let a = m.var(0)?;
/// let b = m.var(1)?;
/// let ab = m.and(a, b)?;
/// let ba = m.and(b, a)?;
/// assert_eq!(ab, ba); // canonical: same function, same node
/// assert_ne!(ab, BddRef::ZERO);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<Node, BddRef>,
    /// Memoized ITE results.
    cache: HashMap<(BddRef, BddRef, BddRef), BddRef>,
    limit: usize,
}

impl BddManager {
    /// Creates a manager with a node budget.
    pub fn new(node_limit: usize) -> BddManager {
        // Index 0/1 are the constants; they use a sentinel variable beyond
        // any real variable so terminal tests are simple.
        let terminal = Node { var: u32::MAX, low: BddRef::ZERO, high: BddRef::ZERO };
        BddManager {
            nodes: vec![terminal, terminal],
            unique: HashMap::new(),
            cache: HashMap::new(),
            limit: node_limit.max(16),
        }
    }

    /// Number of live nodes (including the two constants).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether only the constants exist.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 2
    }

    fn var_of(&self, r: BddRef) -> u32 {
        self.nodes[r.0 as usize].var
    }

    fn mk(&mut self, var: u32, low: BddRef, high: BddRef) -> Result<BddRef, BddError> {
        if low == high {
            return Ok(low);
        }
        let n = Node { var, low, high };
        if let Some(&r) = self.unique.get(&n) {
            return Ok(r);
        }
        if self.nodes.len() >= self.limit {
            return Err(BddError::NodeLimit(self.limit));
        }
        let r = BddRef(self.nodes.len() as u32);
        self.nodes.push(n);
        self.unique.insert(n, r);
        Ok(r)
    }

    /// The projection function of variable `v`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the budget is exhausted.
    pub fn var(&mut self, v: u32) -> Result<BddRef, BddError> {
        self.mk(v, BddRef::ZERO, BddRef::ONE)
    }

    /// If-then-else: the universal connective all operations reduce to.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the budget is exhausted.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> Result<BddRef, BddError> {
        // Terminal cases.
        if f == BddRef::ONE {
            return Ok(g);
        }
        if f == BddRef::ZERO {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == BddRef::ONE && h == BddRef::ZERO {
            return Ok(f);
        }
        if let Some(&r) = self.cache.get(&(f, g, h)) {
            return Ok(r);
        }
        let top = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let low = self.ite(f0, g0, h0)?;
        let high = self.ite(f1, g1, h1)?;
        let r = self.mk(top, low, high)?;
        self.cache.insert((f, g, h), r);
        Ok(r)
    }

    fn cofactors(&self, r: BddRef, var: u32) -> (BddRef, BddRef) {
        let n = self.nodes[r.0 as usize];
        if n.var == var {
            (n.low, n.high)
        } else {
            (r, r)
        }
    }

    /// Conjunction.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the budget is exhausted.
    pub fn and(&mut self, a: BddRef, b: BddRef) -> Result<BddRef, BddError> {
        self.ite(a, b, BddRef::ZERO)
    }

    /// Disjunction.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the budget is exhausted.
    pub fn or(&mut self, a: BddRef, b: BddRef) -> Result<BddRef, BddError> {
        self.ite(a, BddRef::ONE, b)
    }

    /// Negation.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the budget is exhausted.
    pub fn not(&mut self, a: BddRef) -> Result<BddRef, BddError> {
        self.ite(a, BddRef::ZERO, BddRef::ONE)
    }

    /// Exclusive or.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the budget is exhausted.
    pub fn xor(&mut self, a: BddRef, b: BddRef) -> Result<BddRef, BddError> {
        let nb = self.not(b)?;
        self.ite(a, nb, b)
    }

    /// Evaluates a BDD under an assignment (indexed by variable).
    ///
    /// # Panics
    ///
    /// Panics if the BDD references a variable beyond `assignment`.
    pub fn eval(&self, r: BddRef, assignment: &[bool]) -> bool {
        let mut cur = r;
        loop {
            if cur == BddRef::ZERO {
                return false;
            }
            if cur == BddRef::ONE {
                return true;
            }
            let n = self.nodes[cur.0 as usize];
            cur = if assignment[n.var as usize] { n.high } else { n.low };
        }
    }

    /// Finds a satisfying assignment over `num_vars` variables, or `None`
    /// for the constant-0 function.
    pub fn satisfy(&self, r: BddRef, num_vars: usize) -> Option<Vec<bool>> {
        if r == BddRef::ZERO {
            return None;
        }
        let mut assignment = vec![false; num_vars];
        let mut cur = r;
        while cur != BddRef::ONE {
            let n = self.nodes[cur.0 as usize];
            if n.low != BddRef::ZERO {
                assignment[n.var as usize] = false;
                cur = n.low;
            } else {
                assignment[n.var as usize] = true;
                cur = n.high;
            }
        }
        Some(assignment)
    }

    /// Number of satisfying assignments over `num_vars` variables.
    pub fn count_sat(&self, r: BddRef, num_vars: usize) -> u64 {
        fn rec(m: &BddManager, r: BddRef, memo: &mut HashMap<BddRef, f64>, num_vars: u32) -> f64 {
            if r == BddRef::ZERO {
                return 0.0;
            }
            if r == BddRef::ONE {
                return 1.0;
            }
            if let Some(&v) = memo.get(&r) {
                return v;
            }
            let n = m.nodes[r.0 as usize];
            let skip_low = m.level_gap(n.low, n.var, num_vars);
            let skip_high = m.level_gap(n.high, n.var, num_vars);
            let v = rec(m, n.low, memo, num_vars) * skip_low
                + rec(m, n.high, memo, num_vars) * skip_high;
            memo.insert(r, v);
            v
        }
        let top_gap = if r == BddRef::ZERO || r == BddRef::ONE {
            2f64.powi(num_vars as i32)
        } else {
            2f64.powi(self.var_of(r) as i32)
        };
        if r == BddRef::ZERO {
            return 0;
        }
        if r == BddRef::ONE {
            return top_gap as u64;
        }
        let mut memo = HashMap::new();
        (rec(self, r, &mut memo, num_vars as u32) * top_gap) as u64
    }

    /// `2^(levels skipped between a node and its child)`.
    fn level_gap(&self, child: BddRef, parent_var: u32, num_vars: u32) -> f64 {
        let child_var = if child == BddRef::ZERO || child == BddRef::ONE {
            num_vars
        } else {
            self.var_of(child)
        };
        2f64.powi((child_var - parent_var - 1) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> BddManager {
        BddManager::new(1 << 20)
    }

    #[test]
    fn canonicity_of_commutative_ops() {
        let mut m = mgr();
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let c = m.var(2).unwrap();
        let ab_c = {
            let ab = m.and(a, b).unwrap();
            m.and(ab, c).unwrap()
        };
        let c_ba = {
            let ba = m.and(c, b).unwrap();
            m.and(ba, a).unwrap()
        };
        assert_eq!(ab_c, c_ba, "associativity/commutativity collapse to one node");
    }

    #[test]
    fn tautology_and_contradiction() {
        let mut m = mgr();
        let a = m.var(0).unwrap();
        let na = m.not(a).unwrap();
        assert_eq!(m.or(a, na).unwrap(), BddRef::ONE);
        assert_eq!(m.and(a, na).unwrap(), BddRef::ZERO);
    }

    #[test]
    fn eval_matches_semantics() {
        let mut m = mgr();
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let c = m.var(2).unwrap();
        let ab = m.and(a, b).unwrap();
        let f = m.xor(ab, c).unwrap(); // (a&b)^c
        for bits in 0..8u32 {
            let assignment: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let expect = (assignment[0] & assignment[1]) ^ assignment[2];
            assert_eq!(m.eval(f, &assignment), expect, "bits {bits:03b}");
        }
    }

    #[test]
    fn satisfy_finds_a_model() {
        let mut m = mgr();
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let nb = m.not(b).unwrap();
        let f = m.and(a, nb).unwrap(); // a & !b
        let model = m.satisfy(f, 2).unwrap();
        assert!(m.eval(f, &model));
        assert_eq!(model, vec![true, false]);
        assert!(m.satisfy(BddRef::ZERO, 2).is_none());
    }

    #[test]
    fn count_sat_examples() {
        let mut m = mgr();
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let c = m.var(2).unwrap();
        let f = m.and(a, b).unwrap();
        assert_eq!(m.count_sat(f, 3), 2, "a&b over 3 vars: 2 models");
        let g = m.or(a, c).unwrap();
        assert_eq!(m.count_sat(g, 3), 6, "a|c over 3 vars: 6 models");
        assert_eq!(m.count_sat(BddRef::ONE, 3), 8);
        assert_eq!(m.count_sat(BddRef::ZERO, 3), 0);
    }

    #[test]
    fn parity_bdd_is_linear() {
        let mut m = mgr();
        let mut f = BddRef::ZERO;
        for v in 0..16 {
            let x = m.var(v).unwrap();
            f = m.xor(f, x).unwrap();
        }
        // Parity has a linear-size BDD; the manager also retains the
        // intermediate partial parities (no GC), still O(vars²) overall —
        // an exponential ordering pathology would allocate ~2^16 nodes.
        assert!(m.len() < 600, "parity must stay near-linear, got {} nodes", m.len());
        assert_eq!(m.count_sat(f, 16), 1 << 15);
    }

    #[test]
    fn node_limit_enforced() {
        let mut m = BddManager::new(20);
        let mut f = BddRef::ZERO;
        let mut hit_limit = false;
        // Build something wide until the budget trips.
        for v in 0..16 {
            let x = match m.var(v) {
                Ok(x) => x,
                Err(BddError::NodeLimit(_)) => {
                    hit_limit = true;
                    break;
                }
            };
            match m.xor(f, x) {
                Ok(nf) => f = nf,
                Err(BddError::NodeLimit(_)) => {
                    hit_limit = true;
                    break;
                }
            }
        }
        assert!(hit_limit, "a 20-node budget cannot hold 16-var parity");
    }
}
