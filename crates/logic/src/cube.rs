//! Cubes and covers in positional-cube notation (PCN), the data structure of
//! Espresso-style two-level minimization.
//!
//! Each variable occupies 2 bits of a `u64`: `01` = positive literal, `10` =
//! negative literal, `11` = don't-care, `00` = contradiction. Up to 32
//! variables per cube.

/// A product term over up to 32 boolean variables.
///
/// # Examples
///
/// ```
/// use eda_logic::Cube;
/// // x0 & !x2 over 3 variables
/// let c = Cube::full(3).with_literal(0, true).with_literal(2, false);
/// assert!(c.eval(&[true, false, false]));
/// assert!(!c.eval(&[true, false, true]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cube {
    bits: u64,
    num_vars: u8,
}

impl Cube {
    /// Maximum supported variable count.
    pub const MAX_VARS: usize = 32;

    /// The universal cube (all don't-cares).
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 32`.
    pub fn full(num_vars: usize) -> Cube {
        assert!(num_vars <= Self::MAX_VARS, "at most {} variables", Self::MAX_VARS);
        let bits = if num_vars == 32 { !0u64 } else { (1u64 << (2 * num_vars)) - 1 };
        Cube { bits, num_vars: num_vars as u8 }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// Returns a copy with variable `v` constrained to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vars`.
    pub fn with_literal(mut self, v: usize, value: bool) -> Cube {
        assert!(v < self.num_vars(), "variable out of range");
        let field = if value { 0b01u64 } else { 0b10u64 };
        self.bits = (self.bits & !(0b11u64 << (2 * v))) | (field << (2 * v));
        self
    }

    /// The 2-bit field of variable `v`: `0b01`, `0b10`, `0b11`, or `0b00`.
    pub fn literal(&self, v: usize) -> u64 {
        self.bits >> (2 * v) & 0b11
    }

    /// Returns a copy with variable `v` freed to don't-care.
    pub fn raised(mut self, v: usize) -> Cube {
        assert!(v < self.num_vars(), "variable out of range");
        self.bits |= 0b11u64 << (2 * v);
        self
    }

    /// Whether any variable field is `00` (the cube denotes the empty set).
    pub fn is_empty(&self) -> bool {
        let odd = self.bits & 0xAAAA_AAAA_AAAA_AAAA;
        let even = self.bits & 0x5555_5555_5555_5555;
        let present = (odd >> 1) | even; // 1 where field != 00
        let mask = if self.num_vars() == 32 { !0u64 } else { (1u64 << (2 * self.num_vars())) - 1 };
        let all = mask & 0x5555_5555_5555_5555;
        present & all != all
    }

    /// Whether every variable is a don't-care.
    pub fn is_full(&self) -> bool {
        *self == Cube::full(self.num_vars())
    }

    /// Set intersection; may be empty.
    pub fn intersect(&self, other: &Cube) -> Cube {
        assert_eq!(self.num_vars, other.num_vars, "mixed variable counts");
        Cube { bits: self.bits & other.bits, num_vars: self.num_vars }
    }

    /// Whether `self` covers `other` (as sets of minterms).
    pub fn contains(&self, other: &Cube) -> bool {
        assert_eq!(self.num_vars, other.num_vars, "mixed variable counts");
        self.bits | other.bits == self.bits
    }

    /// Number of variables where the fields are disjoint (`distance`); two
    /// cubes intersect iff their distance is zero.
    pub fn distance(&self, other: &Cube) -> u32 {
        let i = self.bits & other.bits;
        let odd = i & 0xAAAA_AAAA_AAAA_AAAA;
        let even = i & 0x5555_5555_5555_5555;
        let present = (odd >> 1) | even;
        let mask = if self.num_vars() == 32 { !0u64 } else { (1u64 << (2 * self.num_vars())) - 1 };
        let all = mask & 0x5555_5555_5555_5555;
        (all & !present).count_ones()
    }

    /// Number of bound literals (non-don't-care variables).
    pub fn literal_count(&self) -> u32 {
        let odd = self.bits & 0xAAAA_AAAA_AAAA_AAAA;
        let even = self.bits & 0x5555_5555_5555_5555;
        let dc = (odd >> 1) & even; // 1 where field == 11
        let mask = if self.num_vars() == 32 { !0u64 } else { (1u64 << (2 * self.num_vars())) - 1 };
        let all = mask & 0x5555_5555_5555_5555;
        (all & !dc).count_ones()
    }

    /// Evaluates membership of a minterm.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != num_vars`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars(), "assignment length");
        for (v, &b) in assignment.iter().enumerate() {
            let f = self.literal(v);
            if f == 0b00 {
                return false;
            }
            if b && f == 0b10 {
                return false;
            }
            if !b && f == 0b01 {
                return false;
            }
        }
        true
    }

    /// The smallest cube containing both (supercube).
    pub fn supercube(&self, other: &Cube) -> Cube {
        assert_eq!(self.num_vars, other.num_vars, "mixed variable counts");
        Cube { bits: self.bits | other.bits, num_vars: self.num_vars }
    }

    /// Cofactor of this cube with respect to cube `p` (the Shannon cofactor
    /// used by tautology/complement recursion). Returns `None` if the cubes
    /// do not intersect.
    pub fn cofactor(&self, p: &Cube) -> Option<Cube> {
        if self.distance(p) > 0 {
            return None;
        }
        // Variables bound in p become don't-care in the cofactor.
        let mut out = *self;
        for v in 0..self.num_vars() {
            if p.literal(v) != 0b11 {
                out = out.raised(v);
            }
        }
        Some(out)
    }
}

impl std::fmt::Display for Cube {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for v in 0..self.num_vars() {
            let c = match self.literal(v) {
                0b01 => '1',
                0b10 => '0',
                0b11 => '-',
                _ => '!',
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// A sum-of-products: a list of cubes over a shared variable count.
///
/// # Examples
///
/// ```
/// use eda_logic::{Cover, Cube};
/// let mut f = Cover::new(2);
/// f.push(Cube::full(2).with_literal(0, true));  // x0
/// f.push(Cube::full(2).with_literal(1, true));  // x1
/// assert!(f.eval(&[false, true]));
/// assert!(!f.eval(&[false, false]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cover {
    num_vars: usize,
    cubes: Vec<Cube>,
}

impl Cover {
    /// An empty (constant-0) cover.
    pub fn new(num_vars: usize) -> Cover {
        assert!(num_vars <= Cube::MAX_VARS, "at most {} variables", Cube::MAX_VARS);
        Cover { num_vars, cubes: Vec::new() }
    }

    /// A constant-1 cover (single universal cube).
    pub fn tautology_cover(num_vars: usize) -> Cover {
        let mut c = Cover::new(num_vars);
        c.push(Cube::full(num_vars));
        c
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Adds a cube, ignoring empty cubes.
    ///
    /// # Panics
    ///
    /// Panics if the cube's variable count differs.
    pub fn push(&mut self, cube: Cube) {
        assert_eq!(cube.num_vars(), self.num_vars, "cube arity mismatch");
        if !cube.is_empty() {
            self.cubes.push(cube);
        }
    }

    /// The cubes.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of cubes.
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// Whether the cover has no cubes (constant 0).
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Total bound literals across cubes (the classic Espresso cost).
    pub fn literal_cost(&self) -> u32 {
        self.cubes.iter().map(|c| c.literal_count()).sum()
    }

    /// Evaluates the disjunction on a minterm.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.cubes.iter().any(|c| c.eval(assignment))
    }

    /// Cofactor of the whole cover by cube `p`.
    pub fn cofactor(&self, p: &Cube) -> Cover {
        let mut out = Cover::new(self.num_vars);
        for c in &self.cubes {
            if let Some(cf) = c.cofactor(p) {
                out.push(cf);
            }
        }
        out
    }

    /// Removes cubes strictly contained in another cube of the cover.
    pub fn remove_contained(&mut self) {
        let cubes = std::mem::take(&mut self.cubes);
        let mut kept: Vec<Cube> = Vec::with_capacity(cubes.len());
        for (i, c) in cubes.iter().enumerate() {
            let dominated = cubes.iter().enumerate().any(|(j, d)| {
                j != i && d.contains(c) && !(c.contains(d) && j > i)
            });
            if !dominated {
                kept.push(*c);
            }
        }
        self.cubes = kept;
    }

    /// Builds a cover listing every ON-set minterm of a truth-table-like
    /// oracle (used to seed minimization in tests and synthesis).
    pub fn from_minterms(num_vars: usize, minterms: impl IntoIterator<Item = usize>) -> Cover {
        let mut c = Cover::new(num_vars);
        for m in minterms {
            let mut cube = Cube::full(num_vars);
            for v in 0..num_vars {
                cube = cube.with_literal(v, m >> v & 1 == 1);
            }
            c.push(cube);
        }
        c
    }
}

impl FromIterator<Cube> for Cover {
    /// Collects cubes into a cover.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty (the variable count is unknown) —
    /// use [`Cover::new`] for empty covers.
    fn from_iter<T: IntoIterator<Item = Cube>>(iter: T) -> Self {
        let cubes: Vec<Cube> = iter.into_iter().collect();
        let n = cubes.first().expect("cannot infer variable count from empty iterator").num_vars();
        let mut c = Cover::new(n);
        for cube in cubes {
            c.push(cube);
        }
        c
    }
}

impl Extend<Cube> for Cover {
    fn extend<T: IntoIterator<Item = Cube>>(&mut self, iter: T) {
        for cube in iter {
            self.push(cube);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_fields() {
        let c = Cube::full(4).with_literal(1, true).with_literal(3, false);
        assert_eq!(c.literal(0), 0b11);
        assert_eq!(c.literal(1), 0b01);
        assert_eq!(c.literal(3), 0b10);
        assert_eq!(c.literal_count(), 2);
        assert_eq!(c.to_string(), "-1-0");
    }

    #[test]
    fn empty_detection() {
        let a = Cube::full(3).with_literal(0, true);
        let b = Cube::full(3).with_literal(0, false);
        assert!(!a.is_empty());
        assert!(a.intersect(&b).is_empty());
        assert_eq!(a.distance(&b), 1);
        assert_eq!(a.distance(&a), 0);
    }

    #[test]
    fn containment() {
        let big = Cube::full(3).with_literal(0, true);
        let small = big.with_literal(1, false);
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
        assert!(big.contains(&big));
    }

    #[test]
    fn supercube_is_smallest_container() {
        let a = Cube::full(3).with_literal(0, true).with_literal(1, true);
        let b = Cube::full(3).with_literal(0, true).with_literal(1, false);
        let s = a.supercube(&b);
        assert!(s.contains(&a) && s.contains(&b));
        assert_eq!(s.literal(0), 0b01);
        assert_eq!(s.literal(1), 0b11);
    }

    #[test]
    fn cube_cofactor() {
        // c = x0 & x1 ; cofactor by p = x0 -> x1
        let c = Cube::full(3).with_literal(0, true).with_literal(1, true);
        let p = Cube::full(3).with_literal(0, true);
        let cf = c.cofactor(&p).unwrap();
        assert_eq!(cf.literal(0), 0b11);
        assert_eq!(cf.literal(1), 0b01);
        // Disjoint cubes have no cofactor.
        let q = Cube::full(3).with_literal(0, false);
        assert!(c.cofactor(&q).is_none());
    }

    #[test]
    fn cover_eval_is_disjunction() {
        let f = Cover::from_minterms(3, [1usize, 6]);
        assert!(f.eval(&[true, false, false])); // minterm 1
        assert!(f.eval(&[false, true, true])); // minterm 6
        assert!(!f.eval(&[true, true, true]));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn remove_contained_dedups() {
        let mut f = Cover::new(2);
        let big = Cube::full(2).with_literal(0, true);
        f.push(big);
        f.push(big.with_literal(1, true)); // contained
        f.push(big); // duplicate
        f.remove_contained();
        assert_eq!(f.len(), 1);
        assert!(f.cubes()[0].contains(&big));
    }

    #[test]
    fn push_drops_empty() {
        let mut f = Cover::new(2);
        let a = Cube::full(2).with_literal(0, true);
        let b = Cube::full(2).with_literal(0, false);
        f.push(a.intersect(&b));
        assert!(f.is_empty());
    }

    #[test]
    fn collect_and_extend() {
        let a = Cube::full(2).with_literal(0, true);
        let b = Cube::full(2).with_literal(1, true);
        let mut f: Cover = [a].into_iter().collect();
        f.extend([b]);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn thirty_two_vars() {
        let c = Cube::full(32).with_literal(31, true);
        assert_eq!(c.literal(31), 0b01);
        assert_eq!(c.literal_count(), 1);
        assert!(!c.is_empty());
    }
}
