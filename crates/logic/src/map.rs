//! Cut-based technology mapping from AIGs onto a standard-cell [`Library`],
//! plus the deliberately naive decade-old baseline mapper.
//!
//! Domic's claim C3 ("in the last ten years, we have improved advanced RTL
//! synthesis results by 30 % in terms of area") is reproduced by comparing
//! [`map_aig`] (cut matching with area-flow selection, the 2016-era flow)
//! against [`map_naive`] (per-node NAND2/INV decomposition, the 2006-era
//! baseline) on the same AIGs.
//!
//! Matching is phase-complete: every cell is tabulated under all input
//! permutations *and* input complementations, and both output phases of every
//! node are costed, so inverters appear only where they pay for themselves.

use crate::aig::{Aig, Lit, RawNode, SeqBoundary};
use crate::tt::TruthTable;
use eda_netlist::{CellFunction, CellId, InstId, Library, NetId, Netlist, NetlistError};
use eda_par::ParStats;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Mapping objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapGoal {
    /// Minimize total cell area (area-flow selection).
    Area,
    /// Minimize the critical path (arrival-time selection).
    Delay,
}

/// Errors from technology mapping.
#[derive(Debug, Clone, PartialEq)]
pub enum MapError {
    /// The library lacks an inverter (required to realize complement edges).
    MissingInverter,
    /// The library lacks a 2-input NAND or AND (required for feasibility).
    MissingAnd2,
    /// The library lacks a sequential cell to re-insert flops.
    MissingFlop,
    /// Netlist reconstruction failed.
    Netlist(NetlistError),
    /// An internal mapping invariant broke (a bug, surfaced as an error
    /// instead of a panic so callers can degrade gracefully).
    Internal(&'static str),
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::MissingInverter => write!(f, "library has no inverter cell"),
            MapError::MissingAnd2 => write!(f, "library has no 2-input NAND/AND cell"),
            MapError::MissingFlop => write!(f, "library has no D flip-flop cell"),
            MapError::Netlist(e) => write!(f, "netlist construction failed: {e}"),
            MapError::Internal(what) => write!(f, "internal mapping invariant broke: {what}"),
        }
    }
}

impl std::error::Error for MapError {}

impl From<NetlistError> for MapError {
    fn from(e: NetlistError) -> Self {
        MapError::Netlist(e)
    }
}

const K: usize = 4;
const MAX_CUTS: usize = 8;

/// A library pattern: a cell plus the pin assignment realizing a truth table.
#[derive(Debug, Clone)]
struct Pattern {
    cell: CellId,
    /// `perm[i]` = cut-leaf position feeding cell pin `i`.
    perm: Vec<usize>,
    /// `neg[i]` = pin `i` reads the complemented leaf.
    neg: Vec<bool>,
}

struct PatternTable {
    /// 4-var truth-table bits (over cut leaves) → patterns realizing it.
    by_tt: HashMap<u64, Vec<Pattern>>,
    inv: CellId,
    inv_area: f64,
    inv_delay: f64,
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn rec(acc: &mut Vec<Vec<usize>>, cur: &mut Vec<usize>, used: &mut Vec<bool>, n: usize) {
        if cur.len() == n {
            acc.push(cur.clone());
            return;
        }
        for i in 0..n {
            if !used[i] {
                used[i] = true;
                cur.push(i);
                rec(acc, cur, used, n);
                cur.pop();
                used[i] = false;
            }
        }
    }
    let mut acc = Vec::new();
    rec(&mut acc, &mut Vec::new(), &mut vec![false; n], n);
    acc
}

impl PatternTable {
    /// Tabulates the library across `threads` workers: each worker handles
    /// whole cells (every permutation × complementation of one cell is
    /// independent of every other cell), and the per-cell candidate lists
    /// are merged back **in library order**, so the table — including the
    /// one-pattern-per-cell rule and the 6-alternative cap — is identical
    /// at any thread count.
    fn build(lib: &Library, threads: usize, par: &mut ParStats) -> Result<PatternTable, MapError> {
        let inv = lib.find_function(CellFunction::Inv).ok_or(MapError::MissingInverter)?;
        let inv_def = lib.cell(inv);
        let cells: Vec<_> = lib
            .iter()
            .filter(|(_, def)| {
                let arity = def.function.num_inputs();
                arity > 0
                    && arity <= K
                    && !def.function.is_sequential()
                    && !matches!(def.function, CellFunction::ClockGate | CellFunction::Decap)
            })
            .collect();
        let (lists, stats) = eda_par::par_map_stats(threads, &cells, |_, &(id, def)| {
            let arity = def.function.num_inputs();
            // First (perm, mask) hit wins per truth table — the same
            // one-pattern-per-cell rule the serial loop enforced globally.
            let mut seen: Vec<u64> = Vec::new();
            let mut found: Vec<(u64, Pattern)> = Vec::new();
            for perm in permutations(arity) {
                for mask in 0..(1u32 << arity) {
                    let neg: Vec<bool> = (0..arity).map(|i| mask >> i & 1 == 1).collect();
                    // Truth table over cut-leaf variables: pin i reads leaf
                    // perm[i] xor neg[i].
                    let mut bits = 0u64;
                    for row in 0..(1usize << K) {
                        let pins: Vec<bool> =
                            (0..arity).map(|i| (row >> perm[i] & 1 == 1) ^ neg[i]).collect();
                        if def.function.eval(&pins) {
                            bits |= 1 << row;
                        }
                    }
                    if seen.contains(&bits) {
                        continue;
                    }
                    seen.push(bits);
                    found.push((bits, Pattern { cell: id, perm: perm.clone(), neg }));
                }
            }
            found
        });
        par.absorb(&stats);
        let mut by_tt: HashMap<u64, Vec<Pattern>> = HashMap::new();
        for list in lists {
            for (bits, pat) in list {
                let entry = by_tt.entry(bits).or_default();
                // Bound the alternatives per function.
                if entry.len() >= 6 {
                    continue;
                }
                entry.push(pat);
            }
        }
        Ok(PatternTable { by_tt, inv, inv_area: inv_def.area_um2, inv_delay: inv_def.delay_ps })
    }
}

/// Outcome of a mapping run.
#[derive(Debug, Clone)]
pub struct MapOutcome {
    /// The mapped gate-level netlist.
    pub netlist: Netlist,
    /// Total mapped cell area (µm², reference node).
    pub area_um2: f64,
    /// Estimated critical path (intrinsic delays only, ps).
    pub delay_ps: f64,
    /// Number of mapped combinational cell instances.
    pub cells: usize,
}

#[derive(Clone)]
struct MapCut {
    leaves: Vec<u32>,
    tt: TruthTable,
}

#[derive(Clone)]
struct Best {
    cost: f64,
    arrival: f64,
    /// Chosen cell, or `None` when realized as an inverter on the other phase
    /// (or a PI / constant).
    cell: Option<CellId>,
    via_inverter: bool,
    /// `(leaf node, phase)` per cell pin, in pin order.
    leaf_phases: Vec<(u32, bool)>,
}

impl Best {
    fn unset() -> Best {
        Best {
            cost: f64::INFINITY,
            arrival: f64::INFINITY,
            cell: None,
            via_inverter: false,
            leaf_phases: Vec::new(),
        }
    }
}

fn tt_on(old_leaves: &[u32], tt: &TruthTable, new_leaves: &[u32]) -> Result<TruthTable, MapError> {
    let mut out = 0u64;
    for row in 0..(1usize << K) {
        let mut old_row = 0usize;
        for (i, &ol) in old_leaves.iter().enumerate() {
            let p = new_leaves
                .iter()
                .position(|&nl| nl == ol)
                .ok_or(MapError::Internal("merged cut leaves are not a superset"))?;
            if row >> p & 1 == 1 {
                old_row |= 1 << i;
            }
        }
        if tt.bits() >> old_row & 1 == 1 {
            out |= 1 << row;
        }
    }
    Ok(TruthTable::from_bits(K, out))
}

/// Groups node indices into topological waves by logic level (constants and
/// PIs at level 0, an AND at `1 + max(fanin levels)`). A node's cuts and its
/// match selection read only nodes of strictly lower level, so every wave is
/// an independent unit of parallel work; within a wave, indices stay in
/// ascending order so results are written back deterministically.
fn level_waves(nodes: &[RawNode]) -> Vec<Vec<usize>> {
    let mut level = vec![0usize; nodes.len()];
    let mut waves: Vec<Vec<usize>> = Vec::new();
    for (i, node) in nodes.iter().enumerate() {
        if let RawNode::And(a, b) = node {
            level[i] = 1 + level[a.node()].max(level[b.node()]);
        }
        if waves.len() <= level[i] {
            waves.resize_with(level[i] + 1, Vec::new);
        }
        waves[level[i]].push(i);
    }
    waves
}

/// Cut list of one node, reading only the (already final) cut lists of its
/// fanins. Pure in `i` given `nodes` and the lower levels of `cuts`, so
/// nodes of one wave can run on any worker without affecting the result.
fn cuts_for_node(nodes: &[RawNode], cuts: &[Vec<MapCut>], i: usize) -> Result<Vec<MapCut>, MapError> {
    match nodes[i] {
        RawNode::Const | RawNode::Pi(_) => {
            Ok(vec![MapCut { leaves: vec![i as u32], tt: TruthTable::var(K, 0) }])
        }
        RawNode::And(a, b) => {
            let mut merged: Vec<MapCut> = Vec::new();
            for ca in &cuts[a.node()] {
                for cb in &cuts[b.node()] {
                    let mut leaves = ca.leaves.clone();
                    for &l in &cb.leaves {
                        if !leaves.contains(&l) {
                            leaves.push(l);
                        }
                    }
                    if leaves.len() > K {
                        continue;
                    }
                    leaves.sort_unstable();
                    if merged.iter().any(|c| c.leaves == leaves) {
                        continue;
                    }
                    let ta = tt_on(&ca.leaves, &ca.tt, &leaves)?;
                    let tb = tt_on(&cb.leaves, &cb.tt, &leaves)?;
                    let fa = if a.is_complemented() { ta.not() } else { ta };
                    let fb = if b.is_complemented() { tb.not() } else { tb };
                    merged.push(MapCut { leaves, tt: fa.and(&fb) });
                }
            }
            merged.sort_by_key(|c| c.leaves.len());
            merged.truncate(MAX_CUTS - 1);
            // The trivial cut lets parents treat this node as a leaf. It
            // is self-referential for this node's own matching, so the DP
            // naturally rejects it (the leaf's best cost is still ∞).
            merged.insert(0, MapCut { leaves: vec![i as u32], tt: TruthTable::var(K, 0) });
            Ok(merged)
        }
    }
}

/// Enumerates K-feasible cuts wave-by-wave: within a level every node's cut
/// list depends only on finished lower levels, so the wave fans out across
/// `threads` workers and lands back in index order — bit-identical at any
/// thread count.
fn enumerate_cuts(
    nodes: &[RawNode],
    waves: &[Vec<usize>],
    threads: usize,
    par: &mut ParStats,
) -> Result<Vec<Vec<MapCut>>, MapError> {
    let mut cuts: Vec<Vec<MapCut>> = vec![Vec::new(); nodes.len()];
    for wave in waves {
        let (results, stats) =
            eda_par::par_map_stats(threads, wave, |_, &i| cuts_for_node(nodes, &cuts, i));
        par.absorb(&stats);
        for (&i, r) in wave.iter().zip(results) {
            cuts[i] = r?;
        }
    }
    Ok(cuts)
}

/// Best matches for both phases of one node, reading only `best` entries of
/// strictly lower levels (cut leaves live in the node's fanin cone). Pure in
/// `i`, so one wave's nodes can be matched on any worker in any order.
#[allow(clippy::too_many_arguments)]
fn match_node(
    nodes: &[RawNode],
    cuts: &[Vec<MapCut>],
    best: &[[Best; 2]],
    refs: &[u32],
    table: &PatternTable,
    lib: &Library,
    goal: MapGoal,
    i: usize,
) -> [Best; 2] {
    match nodes[i] {
        RawNode::Const => [
            Best { cost: 0.0, arrival: 0.0, ..Best::unset() },
            Best { cost: 0.0, arrival: 0.0, ..Best::unset() },
        ],
        RawNode::Pi(_) => [
            Best { cost: 0.0, arrival: 0.0, ..Best::unset() },
            Best {
                cost: table.inv_area,
                arrival: table.inv_delay,
                via_inverter: true,
                ..Best::unset()
            },
        ],
        RawNode::And(..) => {
            let mut out: [Best; 2] = std::array::from_fn(|ph| {
                let mut b = Best::unset();
                for cut in &cuts[i] {
                    // The trivial self-cut would let phase 1 "match" an
                    // inverter fed by phase 0 of the same node, creating
                    // a realization cycle with the via-inverter path.
                    if cut.leaves == [i as u32] {
                        continue;
                    }
                    let want = if ph == 0 { cut.tt } else { cut.tt.not() };
                    let Some(pats) = table.by_tt.get(&want.bits()) else { continue };
                    for pat in pats {
                        // Every pin must address an existing leaf.
                        if pat.perm.iter().any(|&p| p >= cut.leaves.len()) {
                            continue;
                        }
                        let def = lib.cell(pat.cell);
                        let mut cost = def.area_um2;
                        let mut arr: f64 = 0.0;
                        let mut leaf_phases = Vec::with_capacity(pat.perm.len());
                        let mut feasible = true;
                        for (pin, &lp) in pat.perm.iter().enumerate() {
                            let leaf = cut.leaves[lp] as usize;
                            let phase = pat.neg[pin];
                            let lb = &best[leaf][phase as usize];
                            if !lb.cost.is_finite() {
                                feasible = false;
                                break;
                            }
                            cost += lb.cost / refs[leaf].max(1) as f64;
                            arr = arr.max(lb.arrival);
                            leaf_phases.push((leaf as u32, phase));
                        }
                        if !feasible {
                            continue;
                        }
                        let arrival = arr + def.delay_ps;
                        let better = match goal {
                            MapGoal::Area => {
                                cost < b.cost || (cost == b.cost && arrival < b.arrival)
                            }
                            MapGoal::Delay => {
                                arrival < b.arrival || (arrival == b.arrival && cost < b.cost)
                            }
                        };
                        if better {
                            b = Best {
                                cost,
                                arrival,
                                cell: Some(pat.cell),
                                via_inverter: false,
                                leaf_phases,
                            };
                        }
                    }
                }
                b
            });
            // Consider realizing each phase by inverting the other.
            for ph in 0..2 {
                let other = out[1 - ph].clone();
                if !other.cost.is_finite() || other.via_inverter {
                    continue;
                }
                let cost = other.cost + table.inv_area;
                let arrival = other.arrival + table.inv_delay;
                let better = match goal {
                    MapGoal::Area => cost < out[ph].cost,
                    MapGoal::Delay => arrival < out[ph].arrival,
                };
                if better {
                    out[ph] = Best {
                        cost,
                        arrival,
                        cell: None,
                        via_inverter: true,
                        leaf_phases: Vec::new(),
                    };
                }
            }
            debug_assert!(
                out[0].cost.is_finite() || out[1].cost.is_finite(),
                "node {i} unmappable"
            );
            out
        }
    }
}

/// One gate of a hierarchical block's netlist fragment: named and wired
/// off-thread, spliced into the shared [`Netlist`] serially in block order.
struct GateSpec {
    /// `(node << 1) | phase` for memoized gates; `None` for block-local ties.
    key: Option<u32>,
    name: String,
    kind: SpecKind,
    ins: Vec<SpecRef>,
}

enum SpecKind {
    Cell(CellId),
    Inv,
    Tie(bool),
}

/// How a fragment gate input is resolved when the fragment is spliced in.
enum SpecRef {
    /// Combinational input `k` (real PI or flop Q), positive phase.
    Pi(usize),
    /// An earlier gate of the same fragment, by fragment index.
    Local(u32),
    /// `(node << 1) | phase` realized by an earlier block; first-owner
    /// claiming in fixed block order guarantees it is never a later one.
    Foreign(u32),
}

/// The `(node, phase)` closure a block's PO cones realize, as
/// `(node << 1) | phase` keys in canonical (post-order DFS) creation order,
/// so children always precede the gates that read them.
///
/// A pure function of the AIG and the chosen matches — never of the thread
/// count — which makes the per-block fan-out bit-identical to serial.
fn cone_keys(nodes: &[RawNode], best: &[[Best; 2]], pos: &[Lit]) -> Vec<u32> {
    fn visit(
        nodes: &[RawNode],
        best: &[[Best; 2]],
        seen: &mut HashSet<u32>,
        order: &mut Vec<u32>,
        node: u32,
        phase: bool,
    ) {
        let key = (node << 1) | phase as u32;
        match nodes[node as usize] {
            // Ties are block-local (created on demand per fragment), and
            // positive PI references are boundary nets: neither is claimable.
            RawNode::Const => {}
            RawNode::Pi(_) => {
                if phase && seen.insert(key) {
                    order.push(key);
                }
            }
            RawNode::And(..) => {
                if !seen.insert(key) {
                    return;
                }
                let b = &best[node as usize][phase as usize];
                if b.via_inverter {
                    visit(nodes, best, seen, order, node, !phase);
                } else {
                    for &(leaf, ph) in &b.leaf_phases {
                        visit(nodes, best, seen, order, leaf, ph);
                    }
                }
                order.push(key);
            }
        }
    }
    let mut seen = HashSet::new();
    let mut order = Vec::new();
    for lit in pos {
        visit(nodes, best, &mut seen, &mut order, lit.node() as u32, lit.is_complemented());
    }
    order
}

/// A fragment gate's reference to `(node, phase)`: a boundary net, a tie, an
/// earlier gate of this fragment, or a gate owned by an earlier block.
fn fragment_ref(
    nodes: &[RawNode],
    bi: usize,
    specs: &mut Vec<GateSpec>,
    ties: &mut [Option<u32>; 2],
    local: &HashMap<u32, u32>,
    node: u32,
    phase: bool,
) -> SpecRef {
    match nodes[node as usize] {
        RawNode::Const => {
            let idx = phase as usize;
            let at = *ties[idx].get_or_insert_with(|| {
                specs.push(GateSpec {
                    key: None,
                    name: format!("u_b{bi}_t{idx}"),
                    kind: SpecKind::Tie(phase),
                    ins: Vec::new(),
                });
                specs.len() as u32 - 1
            });
            SpecRef::Local(at)
        }
        RawNode::Pi(k) if !phase => SpecRef::Pi(k),
        _ => {
            let key = (node << 1) | phase as u32;
            match local.get(&key) {
                Some(&i) => SpecRef::Local(i),
                None => SpecRef::Foreign(key),
            }
        }
    }
}

/// Realizes block `bi`'s owned gates as a detached fragment: deterministic
/// block-scoped names (`u_b{bi}_…`), inputs as symbolic [`SpecRef`]s. Runs
/// off-thread — nothing here touches the shared netlist.
///
/// Returns the fragment plus one [`SpecRef`] per block PO (its D-input).
fn build_fragment(
    nodes: &[RawNode],
    best: &[[Best; 2]],
    bi: usize,
    owned: &[u32],
    pos: &[Lit],
) -> Result<(Vec<GateSpec>, Vec<SpecRef>), MapError> {
    let mut specs: Vec<GateSpec> = Vec::with_capacity(owned.len());
    let mut local: HashMap<u32, u32> = HashMap::with_capacity(owned.len());
    let mut ties: [Option<u32>; 2] = [None, None];
    for &key in owned {
        let (node, phase) = (key >> 1, key & 1 == 1);
        let spec = match nodes[node as usize] {
            RawNode::Const => return Err(MapError::Internal("const node claimed by a block")),
            RawNode::Pi(k) => GateSpec {
                key: Some(key),
                name: format!("u_b{bi}_i{}", specs.len()),
                kind: SpecKind::Inv,
                ins: vec![SpecRef::Pi(k)],
            },
            RawNode::And(..) => {
                let b = &best[node as usize][phase as usize];
                if b.via_inverter {
                    let src = fragment_ref(nodes, bi, &mut specs, &mut ties, &local, node, !phase);
                    GateSpec {
                        key: Some(key),
                        name: format!("u_b{bi}_i{}", specs.len()),
                        kind: SpecKind::Inv,
                        ins: vec![src],
                    }
                } else {
                    let cell = b.cell.ok_or(MapError::Internal("direct match lost its cell"))?;
                    let ins = b
                        .leaf_phases
                        .iter()
                        .map(|&(leaf, ph)| {
                            fragment_ref(nodes, bi, &mut specs, &mut ties, &local, leaf, ph)
                        })
                        .collect();
                    GateSpec {
                        key: Some(key),
                        name: format!("u_b{bi}_c{}", specs.len()),
                        kind: SpecKind::Cell(cell),
                        ins,
                    }
                }
            }
        };
        local.insert(key, specs.len() as u32);
        specs.push(spec);
    }
    let po_refs = pos
        .iter()
        .map(|lit| {
            fragment_ref(
                nodes,
                bi,
                &mut specs,
                &mut ties,
                &local,
                lit.node() as u32,
                lit.is_complemented(),
            )
        })
        .collect();
    Ok((specs, po_refs))
}

/// Resolves a [`SpecRef`] against the nets spliced in so far.
fn resolve_ref(
    r: &SpecRef,
    local_nets: &[NetId],
    net_of_key: &HashMap<u32, NetId>,
    pi_nets: &[NetId],
    flop_q_nets: &[NetId],
    real_pis: usize,
) -> Result<NetId, MapError> {
    Ok(match *r {
        SpecRef::Pi(k) => {
            if k < real_pis {
                pi_nets[k]
            } else {
                flop_q_nets[k - real_pis]
            }
        }
        SpecRef::Local(i) => local_nets[i as usize],
        SpecRef::Foreign(key) => *net_of_key
            .get(&key)
            .ok_or(MapError::Internal("foreign block reference realized out of order"))?,
    })
}

/// Maps an AIG onto `lib` with phase-complete cut matching.
///
/// Serial convenience wrapper over [`map_aig_threaded`]; the result is
/// bit-identical to the threaded path at any worker count.
///
/// Flops recorded in `boundary` are re-inserted using the library's DFF.
///
/// # Errors
///
/// Fails if the library lacks an inverter, a 2-input NAND/AND (needed for
/// guaranteed feasibility), or — when `boundary` has flops — a D flip-flop.
pub fn map_aig(
    aig: &Aig,
    boundary: &SeqBoundary,
    lib: Arc<Library>,
    goal: MapGoal,
) -> Result<MapOutcome, MapError> {
    map_aig_threaded(aig, boundary, lib, goal, 1).map(|(m, _)| m)
}

/// [`map_aig`] with the hot phases — library tabulation, cut enumeration,
/// and match selection — fanned out across `threads` workers via `eda-par`.
///
/// Cut enumeration and matching parallelize by **topological wave**: all
/// nodes of one logic level are independent given the finished levels below
/// them, so each wave is one deterministic dispatch and the result is
/// bit-identical for any `threads` (`0` = all cores). On hierarchical
/// designs netlist reconstruction fans out too: each block's cone closure
/// and gate fragment are built in parallel ([`cone_keys`],
/// [`build_fragment`]) and folded in fixed block order, so the output is
/// bit-identical at any worker count; flat designs keep the serial memoized
/// walk byte-for-byte. The returned [`ParStats`] accumulates every dispatch
/// for telemetry and speedup projection.
///
/// # Errors
///
/// Same contract as [`map_aig`].
pub fn map_aig_threaded(
    aig: &Aig,
    boundary: &SeqBoundary,
    lib: Arc<Library>,
    goal: MapGoal,
    threads: usize,
) -> Result<(MapOutcome, ParStats), MapError> {
    if lib.find_function(CellFunction::Nand(2)).is_none()
        && lib.find_function(CellFunction::And(2)).is_none()
    {
        return Err(MapError::MissingAnd2);
    }
    let mut par = ParStats::empty();
    let table = PatternTable::build(&lib, threads, &mut par)?;
    let nodes = aig.raw_nodes();
    let n = nodes.len();
    let waves = level_waves(&nodes);
    let cuts = enumerate_cuts(&nodes, &waves, threads, &mut par)?;

    let mut refs = vec![1u32; n];
    for node in &nodes {
        if let RawNode::And(a, b) = node {
            refs[a.node()] += 1;
            refs[b.node()] += 1;
        }
    }

    let mut best: Vec<[Best; 2]> = vec![[Best::unset(), Best::unset()]; n];
    for wave in &waves {
        let (results, stats) = eda_par::par_map_stats(threads, wave, |_, &i| {
            match_node(&nodes, &cuts, &best, &refs, &table, &lib, goal, i)
        });
        par.absorb(&stats);
        for (&i, r) in wave.iter().zip(results) {
            best[i] = r;
        }
    }

    // ---- construct the mapped netlist ----
    let mut out = Netlist::with_library("mapped", lib.clone());
    let pi_names = aig.pi_names();
    let mut pi_nets: Vec<NetId> = Vec::with_capacity(boundary.real_pis);
    for name in pi_names.iter().take(boundary.real_pis) {
        pi_nets.push(out.add_input(name.clone()));
    }
    let mut flop_q_nets: Vec<NetId> = Vec::with_capacity(boundary.flops.len());
    for fb in &boundary.flops {
        flop_q_nets.push(out.add_net(format!("{}__q", fb.name)));
    }

    struct Realizer<'a> {
        nodes: &'a [RawNode],
        best: &'a [[Best; 2]],
        table: &'a PatternTable,
        pi_nets: &'a [NetId],
        flop_q_nets: &'a [NetId],
        real_pis: usize,
        memo: HashMap<(u32, bool), NetId>,
        ties: [Option<NetId>; 2],
        counter: usize,
    }

    impl Realizer<'_> {
        fn net_of_pi(&self, k: usize) -> NetId {
            if k < self.real_pis {
                self.pi_nets[k]
            } else {
                self.flop_q_nets[k - self.real_pis]
            }
        }

        fn tie(&mut self, out: &mut Netlist, phase: bool) -> Result<NetId, MapError> {
            let idx = phase as usize;
            if let Some(nn) = self.ties[idx] {
                return Ok(nn);
            }
            let f = if phase { CellFunction::Const1 } else { CellFunction::Const0 };
            let nn = out.add_gate_fn(format!("u_tie{idx}"), f, &[]).map_err(MapError::Netlist)?;
            self.ties[idx] = Some(nn);
            Ok(nn)
        }

        fn realize(
            &mut self,
            out: &mut Netlist,
            node: u32,
            phase: bool,
        ) -> Result<NetId, MapError> {
            if let Some(&net) = self.memo.get(&(node, phase)) {
                return Ok(net);
            }
            let net = match self.nodes[node as usize] {
                RawNode::Const => self.tie(out, phase)?,
                RawNode::Pi(k) => {
                    if !phase {
                        self.net_of_pi(k)
                    } else {
                        let base = self.net_of_pi(k);
                        self.counter += 1;
                        out.add_gate(format!("u_inv{}", self.counter), self.table.inv, &[base])
                            .map_err(MapError::Netlist)?
                    }
                }
                RawNode::And(..) => {
                    let b = self.best[node as usize][phase as usize].clone();
                    if b.via_inverter {
                        let src = self.realize(out, node, !phase)?;
                        self.counter += 1;
                        out.add_gate(format!("u_inv{}", self.counter), self.table.inv, &[src])
                            .map_err(MapError::Netlist)?
                    } else {
                        let cell =
                            b.cell.ok_or(MapError::Internal("direct match lost its cell"))?;
                        let mut ins = Vec::with_capacity(b.leaf_phases.len());
                        for &(leaf, ph) in &b.leaf_phases {
                            ins.push(self.realize(out, leaf, ph)?);
                        }
                        self.counter += 1;
                        out.add_gate(format!("u_c{}", self.counter), cell, &ins)
                            .map_err(MapError::Netlist)?
                    }
                }
            };
            self.memo.insert((node, phase), net);
            Ok(net)
        }
    }

    // Realize the chosen matches as library gates. Flat designs keep the
    // historical serial walk, byte-identical to before. Hierarchical designs
    // fan out per block: each block's cone closure (phase A) and gate
    // fragment (phase C) are computed in parallel and folded in fixed block
    // order by two cheap serial passes (claiming, B; splicing, D), so the
    // mapped netlist is bit-identical at any thread count. Logic shared
    // between blocks stays with the first block that needs it — the same
    // deterministic first-owner rule the serial walk used — and every gate a
    // block realizes carries that block's label.
    let hierarchical = boundary.flops.iter().any(|fb| fb.block.is_some());
    let mut po_nets: Vec<Option<NetId>> = vec![None; aig.pos().len()];
    let mut memo: HashMap<(u32, bool), NetId> = HashMap::new();
    let tail: Vec<usize> = if hierarchical {
        // Group labelled flop POs by block, in first-appearance order over
        // the flop boundary. Unlabelled cones and real POs go last so shared
        // logic is claimed by a block rather than by an anonymous cone.
        let mut blocks: Vec<(&str, Vec<usize>)> = Vec::new();
        let mut index_of: HashMap<&str, usize> = HashMap::new();
        let mut tail = Vec::new();
        for (fi, fb) in boundary.flops.iter().enumerate() {
            let poi = boundary.real_pos + fi;
            match fb.block.as_deref() {
                Some(b) => {
                    let bi = *index_of.entry(b).or_insert_with(|| {
                        blocks.push((b, Vec::new()));
                        blocks.len() - 1
                    });
                    blocks[bi].1.push(poi);
                }
                None => tail.push(poi),
            }
        }
        tail.extend(0..boundary.real_pos);

        // Phase A (parallel): per-block (node, phase) closures in canonical
        // creation order.
        let lits: Vec<Vec<Lit>> = blocks
            .iter()
            .map(|(_, pois)| pois.iter().map(|&poi| aig.pos()[poi].1).collect())
            .collect();
        let (cones, stats) =
            eda_par::par_tasks_stats(threads, &lits, |_, pos| cone_keys(&nodes, &best, pos));
        par.absorb(&stats);

        // Phase B (serial): first-owner claiming in block order.
        let mut claimed: HashSet<u32> = HashSet::new();
        let owned: Vec<Vec<u32>> = cones
            .into_iter()
            .map(|cone| cone.into_iter().filter(|&k| claimed.insert(k)).collect())
            .collect();

        // Phase C (parallel): realize each block's owned gates as a detached
        // fragment with block-scoped names and symbolic input references.
        let jobs: Vec<usize> = (0..blocks.len()).collect();
        let (frags, stats) = eda_par::par_tasks_stats(threads, &jobs, |_, &bi| {
            build_fragment(&nodes, &best, bi, &owned[bi], &lits[bi])
        });
        par.absorb(&stats);

        // Phase D (serial): splice fragments in block order. Foreign refs
        // always point at an earlier block, so one pass resolves everything.
        let mut net_of_key: HashMap<u32, NetId> = HashMap::new();
        for ((bname, pois), frag) in blocks.iter().zip(frags) {
            let (specs, po_refs) = frag?;
            let mut local_nets: Vec<NetId> = Vec::with_capacity(specs.len());
            for spec in specs {
                let mut ins = Vec::with_capacity(spec.ins.len());
                for r in &spec.ins {
                    ins.push(resolve_ref(
                        r,
                        &local_nets,
                        &net_of_key,
                        &pi_nets,
                        &flop_q_nets,
                        boundary.real_pis,
                    )?);
                }
                let net = match spec.kind {
                    SpecKind::Tie(phase) => {
                        let f = if phase { CellFunction::Const1 } else { CellFunction::Const0 };
                        out.add_gate_fn(spec.name, f, &[]).map_err(MapError::Netlist)?
                    }
                    SpecKind::Inv => {
                        out.add_gate(spec.name, table.inv, &ins).map_err(MapError::Netlist)?
                    }
                    SpecKind::Cell(c) => {
                        out.add_gate(spec.name, c, &ins).map_err(MapError::Netlist)?
                    }
                };
                out.assign_block(InstId::from_index(out.num_instances() - 1), bname);
                if let Some(key) = spec.key {
                    net_of_key.insert(key, net);
                }
                local_nets.push(net);
            }
            for (&poi, r) in pois.iter().zip(&po_refs) {
                po_nets[poi] = Some(resolve_ref(
                    r,
                    &local_nets,
                    &net_of_key,
                    &pi_nets,
                    &flop_q_nets,
                    boundary.real_pis,
                )?);
            }
        }
        // Seed the tail walk with every block-realized net so unlabelled
        // cones reuse block logic instead of duplicating it.
        memo = net_of_key.into_iter().map(|(k, n)| ((k >> 1, k & 1 == 1), n)).collect();
        tail
    } else {
        (0..aig.pos().len()).collect()
    };

    let mut realizer = Realizer {
        nodes: &nodes,
        best: &best,
        table: &table,
        pi_nets: &pi_nets,
        flop_q_nets: &flop_q_nets,
        real_pis: boundary.real_pis,
        memo,
        ties: [None, None],
        counter: 0,
    };
    for poi in tail {
        let (_, lit) = &aig.pos()[poi];
        po_nets[poi] =
            Some(realizer.realize(&mut out, lit.node() as u32, lit.is_complemented())?);
    }
    let po_nets: Vec<NetId> = po_nets
        .into_iter()
        .map(|n| n.ok_or(MapError::Internal("primary output cone never realized")))
        .collect::<Result<_, _>>()?;
    for (i, (name, _)) in aig.pos().iter().take(boundary.real_pos).enumerate() {
        out.add_output(name.clone(), po_nets[i]);
    }
    if !boundary.flops.is_empty() {
        let dff = lib.find_function(CellFunction::Dff).ok_or(MapError::MissingFlop)?;
        for (fi, fb) in boundary.flops.iter().enumerate() {
            let d = po_nets[boundary.real_pos + fi];
            let ck = realizer.net_of_pi(fb.clock_pi);
            out.add_gate_with_output(fb.name.clone(), dff, &[d, ck], flop_q_nets[fi])?;
            if let Some(b) = fb.block.as_deref() {
                out.assign_block(InstId::from_index(out.num_instances() - 1), b);
            }
        }
    }

    let area = out.area_um2();
    let cells = out
        .instances()
        .filter(|(_, i)| !out.library().cell(i.cell()).function.is_sequential())
        .count();
    let delay = aig
        .pos()
        .iter()
        .map(|(_, l)| best[l.node()][l.is_complemented() as usize].arrival)
        .fold(0.0f64, f64::max);
    Ok((MapOutcome { netlist: out, area_um2: area, delay_ps: delay, cells }, par))
}

/// The 2006-era baseline: structural per-node decomposition into NAND2 + INV,
/// no cut matching, no phase optimization.
///
/// # Errors
///
/// Fails if the library lacks NAND2, an inverter, or a required flop.
pub fn map_naive(
    aig: &Aig,
    boundary: &SeqBoundary,
    lib: Arc<Library>,
) -> Result<MapOutcome, MapError> {
    let inv = lib.find_function(CellFunction::Inv).ok_or(MapError::MissingInverter)?;
    let nand = lib.find_function(CellFunction::Nand(2)).ok_or(MapError::MissingAnd2)?;
    let nodes = aig.raw_nodes();
    let mut out = Netlist::with_library("mapped_naive", lib.clone());
    let mut pi_nets: Vec<NetId> = Vec::new();
    for name in aig.pi_names().iter().take(boundary.real_pis) {
        pi_nets.push(out.add_input(name.clone()));
    }
    let mut flop_q_nets: Vec<NetId> = Vec::new();
    for fb in &boundary.flops {
        flop_q_nets.push(out.add_net(format!("{}__q", fb.name)));
    }
    let real_pis = boundary.real_pis;
    let net_of_pi = |k: usize, pi_nets: &[NetId], flop_q_nets: &[NetId]| -> NetId {
        if k < real_pis {
            pi_nets[k]
        } else {
            flop_q_nets[k - real_pis]
        }
    };

    let mut pos_net: Vec<Option<NetId>> = vec![None; nodes.len()];
    let mut neg_net: Vec<Option<NetId>> = vec![None; nodes.len()];
    let mut counter = 0usize;
    let mut ties: [Option<NetId>; 2] = [None, None];

    fn tie_net(
        out: &mut Netlist,
        ties: &mut [Option<NetId>; 2],
        phase: bool,
    ) -> Result<NetId, MapError> {
        let idx = phase as usize;
        if let Some(nn) = ties[idx] {
            return Ok(nn);
        }
        let f = if phase { CellFunction::Const1 } else { CellFunction::Const0 };
        let nn = out.add_gate_fn(format!("n_tie{idx}"), f, &[]).map_err(MapError::Netlist)?;
        ties[idx] = Some(nn);
        Ok(nn)
    }

    for i in 0..nodes.len() {
        match nodes[i] {
            RawNode::Const => {}
            RawNode::Pi(k) => pos_net[i] = Some(net_of_pi(k, &pi_nets, &flop_q_nets)),
            RawNode::And(a, b) => {
                let fetch = |lit: crate::aig::Lit,
                                 out: &mut Netlist,
                                 pos_net: &mut [Option<NetId>],
                                 neg_net: &mut [Option<NetId>],
                                 counter: &mut usize,
                                 ties: &mut [Option<NetId>; 2]|
                 -> Result<NetId, MapError> {
                    let node = lit.node();
                    if matches!(nodes[node], RawNode::Const) {
                        return tie_net(out, ties, lit.is_complemented());
                    }
                    let pos = pos_net[node]
                        .ok_or(MapError::Internal("AIG fanin visited before its driver"));
                    if !lit.is_complemented() {
                        pos
                    } else if let Some(nn) = neg_net[node] {
                        Ok(nn)
                    } else {
                        *counter += 1;
                        let nn = out
                            .add_gate(format!("n_inv{counter}"), inv, &[pos?])
                            .map_err(MapError::Netlist)?;
                        neg_net[node] = Some(nn);
                        Ok(nn)
                    }
                };
                let na = fetch(a, &mut out, &mut pos_net, &mut neg_net, &mut counter, &mut ties)?;
                let nb = fetch(b, &mut out, &mut pos_net, &mut neg_net, &mut counter, &mut ties)?;
                counter += 1;
                let nand_out = out
                    .add_gate(format!("n_nand{counter}"), nand, &[na, nb])
                    .map_err(MapError::Netlist)?;
                counter += 1;
                let and_out = out
                    .add_gate(format!("n_inv{counter}"), inv, &[nand_out])
                    .map_err(MapError::Netlist)?;
                pos_net[i] = Some(and_out);
                neg_net[i] = Some(nand_out);
            }
        }
    }
    let mut po_nets = Vec::new();
    for (_, lit) in aig.pos() {
        let node = lit.node();
        let net = if matches!(nodes[node], RawNode::Const) {
            tie_net(&mut out, &mut ties, lit.is_complemented())?
        } else if !lit.is_complemented() {
            pos_net[node].ok_or(MapError::Internal("primary output driver never mapped"))?
        } else if let Some(nn) = neg_net[node] {
            nn
        } else {
            let pos =
                pos_net[node].ok_or(MapError::Internal("primary output driver never mapped"))?;
            counter += 1;
            let nn = out
                .add_gate(format!("n_inv{counter}"), inv, &[pos])
                .map_err(MapError::Netlist)?;
            neg_net[node] = Some(nn);
            nn
        };
        po_nets.push(net);
    }
    for (i, (name, _)) in aig.pos().iter().take(boundary.real_pos).enumerate() {
        out.add_output(name.clone(), po_nets[i]);
    }
    if !boundary.flops.is_empty() {
        let dff = lib.find_function(CellFunction::Dff).ok_or(MapError::MissingFlop)?;
        for (fi, fb) in boundary.flops.iter().enumerate() {
            let d = po_nets[boundary.real_pos + fi];
            let ck = net_of_pi(fb.clock_pi, &pi_nets, &flop_q_nets);
            out.add_gate_with_output(fb.name.clone(), dff, &[d, ck], flop_q_nets[fi])?;
            if let Some(b) = fb.block.as_deref() {
                out.assign_block(InstId::from_index(out.num_instances() - 1), b);
            }
        }
    }
    let area = out.area_um2();
    let cells = out
        .instances()
        .filter(|(_, i)| !out.library().cell(i.cell()).function.is_sequential())
        .count();
    let lib_ref = out.library();
    let delay = aig.depth() as f64 * (lib_ref.cell(nand).delay_ps + lib_ref.cell(inv).delay_ps);
    Ok(MapOutcome { netlist: out, area_um2: area, delay_ps: delay, cells })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::Aig;
    use eda_netlist::generate;

    fn check_equiv(original: &Netlist, mapped: &Netlist) {
        let k = original.primary_inputs().len();
        assert_eq!(k, mapped.primary_inputs().len());
        let pats: Vec<u64> =
            (0..k).map(|i| 0xA076_1D64_78BD_642Fu64.wrapping_mul(i as u64 + 1)).collect();
        let s1 = vec![0u64; original.flops().len()];
        let s2 = vec![0u64; mapped.flops().len()];
        let (o1, n1) = original.simulate64(&pats, &s1);
        let (o2, n2) = mapped.simulate64(&pats, &s2);
        assert_eq!(o1, o2, "outputs diverge");
        assert_eq!(n1, n2, "next state diverges");
    }

    #[test]
    fn area_map_preserves_adder() {
        let n = generate::ripple_carry_adder(8).unwrap();
        let (aig, bnd) = Aig::from_netlist(&n).unwrap();
        let m = map_aig(&aig, &bnd, Library::generic(), MapGoal::Area).unwrap();
        m.netlist.validate().unwrap();
        check_equiv(&n, &m.netlist);
    }

    #[test]
    fn delay_map_preserves_parity() {
        let n = generate::parity_tree(16).unwrap();
        let (aig, bnd) = Aig::from_netlist(&n).unwrap();
        let m = map_aig(&aig, &bnd, Library::generic(), MapGoal::Delay).unwrap();
        m.netlist.validate().unwrap();
        check_equiv(&n, &m.netlist);
    }

    #[test]
    fn map_handles_sequential() {
        let n = generate::switch_fabric(3, 2).unwrap();
        let (aig, bnd) = Aig::from_netlist(&n).unwrap();
        let m = map_aig(&aig, &bnd, Library::generic(), MapGoal::Area).unwrap();
        m.netlist.validate().unwrap();
        assert_eq!(m.netlist.flops().len(), n.flops().len());
        check_equiv(&n, &m.netlist);
    }

    #[test]
    fn map_works_on_impoverished_library() {
        let n = generate::random_logic(generate::RandomLogicConfig {
            gates: 150,
            seed: 3,
            ..Default::default()
        })
        .unwrap();
        let (aig, bnd) = Aig::from_netlist(&n).unwrap();
        let m = map_aig(&aig, &bnd, Library::nand_inv_2006(), MapGoal::Area).unwrap();
        m.netlist.validate().unwrap();
        check_equiv(&n, &m.netlist);
    }

    #[test]
    fn naive_map_equivalent_but_bigger() {
        let n = generate::random_logic(generate::RandomLogicConfig {
            gates: 300,
            seed: 21,
            ..Default::default()
        })
        .unwrap();
        let (aig, bnd) = Aig::from_netlist(&n).unwrap();
        let naive = map_naive(&aig, &bnd, Library::nand_inv_2006()).unwrap();
        naive.netlist.validate().unwrap();
        check_equiv(&n, &naive.netlist);
        let advanced = map_aig(&aig.rewrite(), &bnd, Library::generic(), MapGoal::Area).unwrap();
        check_equiv(&n, &advanced.netlist);
        assert!(
            advanced.area_um2 < naive.area_um2,
            "advanced {:.1} must beat naive {:.1}",
            advanced.area_um2,
            naive.area_um2
        );
    }

    #[test]
    fn xor_maps_to_single_cell_in_rich_library() {
        let mut g = Aig::new();
        let a = g.add_pi("a");
        let b = g.add_pi("b");
        let x = g.xor(a, b);
        g.add_po("y", x);
        let bnd = SeqBoundary { real_pis: 2, real_pos: 1, flops: vec![] };
        let m = map_aig(&g, &bnd, Library::generic(), MapGoal::Area).unwrap();
        assert_eq!(m.cells, 1, "one XOR2 cell suffices");
        let pats = vec![0xF0F0u64, 0xCCCC];
        let (mo, _) = m.netlist.simulate64(&pats, &[]);
        assert_eq!(mo, g.simulate64(&pats));
    }

    #[test]
    fn polarity_library_wins_on_parity() {
        let n = generate::parity_tree(16).unwrap();
        let (aig, bnd) = Aig::from_netlist(&n).unwrap();
        let cmos = map_aig(&aig, &bnd, Library::generic(), MapGoal::Area).unwrap();
        let pol = map_aig(&aig, &bnd, Library::controlled_polarity(), MapGoal::Area).unwrap();
        check_equiv(&n, &pol.netlist);
        assert!(
            pol.area_um2 < cmos.area_um2,
            "polarity {:.1} must beat CMOS {:.1} on XOR-rich logic",
            pol.area_um2,
            cmos.area_um2
        );
    }

    #[test]
    fn threaded_mapping_is_bit_identical_to_serial() {
        let n = generate::random_logic(generate::RandomLogicConfig {
            gates: 250,
            seed: 11,
            ..Default::default()
        })
        .unwrap();
        let (aig, bnd) = Aig::from_netlist(&n).unwrap();
        for goal in [MapGoal::Area, MapGoal::Delay] {
            let serial = map_aig(&aig, &bnd, Library::generic(), goal).unwrap();
            for threads in [2usize, 4, 8] {
                let (t, stats) =
                    map_aig_threaded(&aig, &bnd, Library::generic(), goal, threads).unwrap();
                assert_eq!(
                    serial.area_um2.to_bits(),
                    t.area_um2.to_bits(),
                    "area must be bit-identical at {threads} threads"
                );
                assert_eq!(serial.delay_ps.to_bits(), t.delay_ps.to_bits());
                assert_eq!(serial.cells, t.cells);
                assert!(stats.chunks > 0, "the threaded path must dispatch work");
                check_equiv(&n, &t.netlist);
            }
        }
    }

    #[test]
    fn hierarchical_block_realization_is_thread_invariant() {
        // The per-block fan-out (cone_keys / build_fragment) must produce the
        // exact same netlist — instance names, cells, wiring, block labels —
        // at every worker count, and stay functionally equivalent.
        let n = generate::mesh_fabric(3, 3, 25, 4, 7).unwrap();
        let (aig, bnd) = Aig::from_netlist(&n).unwrap();
        assert!(bnd.flops.iter().any(|fb| fb.block.is_some()), "mesh flops carry block labels");
        let fingerprint = |m: &MapOutcome| -> Vec<(String, CellId, Option<String>)> {
            m.netlist
                .instances()
                .map(|(_, i)| {
                    let block = i.block().map(|b| m.netlist.block_names()[b as usize].clone());
                    (i.name().to_string(), i.cell(), block)
                })
                .collect()
        };
        let (serial, _) =
            map_aig_threaded(&aig, &bnd, Library::generic(), MapGoal::Area, 1).unwrap();
        serial.netlist.validate().unwrap();
        check_equiv(&n, &serial.netlist);
        let want = fingerprint(&serial);
        // Every block-fragment gate carries its block's label; only the
        // unlabelled tail (real-PO cones) may go without one.
        let labelled = want.iter().filter(|(_, _, b)| b.is_some()).count();
        assert!(labelled * 2 > want.len(), "block cones dominate a mesh netlist");
        for threads in [2usize, 4, 8] {
            let (t, _) =
                map_aig_threaded(&aig, &bnd, Library::generic(), MapGoal::Area, threads).unwrap();
            assert_eq!(want, fingerprint(&t), "netlist must be bit-identical at {threads} threads");
            assert_eq!(serial.area_um2.to_bits(), t.area_um2.to_bits());
            assert_eq!(serial.delay_ps.to_bits(), t.delay_ps.to_bits());
        }
    }

    #[test]
    fn missing_inverter_reported() {
        let mut l = Library::new("broken");
        l.add_cell(eda_netlist::CellDef {
            name: "NAND2".into(),
            function: CellFunction::Nand(2),
            area_um2: 1.0,
            delay_ps: 1.0,
            drive_ps_per_ff: 1.0,
            input_cap_ff: 1.0,
            leakage_nw: 1.0,
        });
        let g = Aig::new();
        let bnd = SeqBoundary { real_pis: 0, real_pos: 0, flops: vec![] };
        assert!(matches!(
            map_aig(&g, &bnd, Arc::new(l), MapGoal::Area),
            Err(MapError::MissingInverter)
        ));
    }

    #[test]
    fn constant_output_maps_to_tie_cell() {
        let mut g = Aig::new();
        let a = g.add_pi("a");
        let f = g.and(a, !a); // constant false
        g.add_po("y", f);
        let bnd = SeqBoundary { real_pis: 1, real_pos: 1, flops: vec![] };
        let m = map_aig(&g, &bnd, Library::generic(), MapGoal::Area).unwrap();
        let (o, _) = m.netlist.simulate64(&[0xFFFF], &[]);
        assert_eq!(o, vec![0]);
    }
}
