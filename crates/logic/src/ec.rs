//! Combinational equivalence checking.
//!
//! Builds BDDs for both netlists over the shared input space (primary inputs
//! plus flop outputs, matched by position) and compares outputs and
//! next-state functions canonically. Where a BDD blows past its node budget,
//! the checker falls back to exhaustive bit-parallel simulation for up to 20
//! inputs, and reports [`EcVerdict::Inconclusive`] beyond that.
//!
//! This is the formal backbone for the panel's "consistently verified
//! throughout the design flow": every transformation in the workspace
//! (synthesis, mapping, clock gating, scan, power intent) can be checked
//! against its input netlist.

use crate::bdd::{BddError, BddManager, BddRef};
use eda_netlist::{CellFunction, Netlist, NetlistError};
use std::collections::HashMap;

/// The checker's answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcVerdict {
    /// Formally equivalent.
    Equivalent,
    /// A concrete distinguishing assignment over the shared inputs.
    Counterexample(Vec<bool>),
    /// Budget exhausted and the input space is too large to enumerate.
    Inconclusive,
}

/// Errors from equivalence checking.
#[derive(Debug, Clone, PartialEq)]
pub enum EcError {
    /// The designs have different interface sizes.
    InterfaceMismatch(String),
    /// One of the netlists is invalid.
    Netlist(NetlistError),
}

impl std::fmt::Display for EcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EcError::InterfaceMismatch(m) => write!(f, "interface mismatch: {m}"),
            EcError::Netlist(e) => write!(f, "invalid netlist: {e}"),
        }
    }
}

impl std::error::Error for EcError {}

impl From<NetlistError> for EcError {
    fn from(e: NetlistError) -> Self {
        EcError::Netlist(e)
    }
}

/// Builds BDDs for every output + flop-D function of a netlist.
///
/// Input variable `i` corresponds to the netlist's `i`-th primary input,
/// followed by flop outputs in [`Netlist::flops`] order. `tie_high` lists PI
/// positions to constrain to constant 1 (enable pins added by
/// transformations); `tie_low` likewise to 0.
fn build_functions(
    m: &mut BddManager,
    netlist: &Netlist,
    shared_inputs: usize,
    tie_high: &[usize],
    tie_low: &[usize],
) -> Result<Result<Vec<BddRef>, BddError>, EcError> {
    let lib = netlist.library();
    let mut net_fn: HashMap<usize, BddRef> = HashMap::new();
    // Primary inputs: shared space first, then ties.
    for (i, &pi) in netlist.primary_inputs().iter().enumerate() {
        let f = if tie_high.contains(&i) {
            BddRef::ONE
        } else if tie_low.contains(&i) {
            BddRef::ZERO
        } else if i < shared_inputs {
            match m.var(i as u32) {
                Ok(v) => v,
                Err(e) => return Ok(Err(e)),
            }
        } else {
            return Err(EcError::InterfaceMismatch(format!(
                "primary input {i} ({}) is beyond the shared space and not tied",
                netlist.net(pi).name()
            )));
        };
        net_fn.insert(pi.index(), f);
    }
    // Flop outputs are pseudo-inputs after the PIs.
    let flops = netlist.flops();
    for (k, &flop) in flops.iter().enumerate() {
        let v = match m.var((shared_inputs + k) as u32) {
            Ok(v) => v,
            Err(e) => return Ok(Err(e)),
        };
        net_fn.insert(netlist.instance(flop).output().index(), v);
    }
    let order = netlist.topo_order()?;
    for id in order {
        let inst = netlist.instance(id);
        let func = lib.cell(inst.cell()).function;
        if func.is_sequential() || func.is_physical_only() {
            continue;
        }
        let ins: Vec<BddRef> = inst
            .inputs()
            .iter()
            .map(|n| net_fn.get(&n.index()).copied().expect("topo order"))
            .collect();
        let f = match eval_cell(m, func, &ins) {
            Ok(f) => f,
            Err(e) => return Ok(Err(e)),
        };
        net_fn.insert(inst.output().index(), f);
    }
    let mut out = Vec::new();
    for (_, net) in netlist.primary_outputs() {
        out.push(*net_fn.get(&net.index()).expect("outputs are driven"));
    }
    for &flop in &flops {
        let d = netlist.instance(flop).inputs()[0];
        out.push(*net_fn.get(&d.index()).expect("flop D driven"));
    }
    Ok(Ok(out))
}

fn eval_cell(m: &mut BddManager, f: CellFunction, ins: &[BddRef]) -> Result<BddRef, BddError> {
    use CellFunction as CF;
    Ok(match f {
        CF::Const0 | CF::Decap => BddRef::ZERO,
        CF::Const1 => BddRef::ONE,
        CF::Buf | CF::LevelShifter => ins[0],
        CF::Inv => m.not(ins[0])?,
        CF::And(_) => {
            let mut acc = BddRef::ONE;
            for &i in ins {
                acc = m.and(acc, i)?;
            }
            acc
        }
        CF::Nand(_) => {
            let mut acc = BddRef::ONE;
            for &i in ins {
                acc = m.and(acc, i)?;
            }
            m.not(acc)?
        }
        CF::Or(_) => {
            let mut acc = BddRef::ZERO;
            for &i in ins {
                acc = m.or(acc, i)?;
            }
            acc
        }
        CF::Nor(_) => {
            let mut acc = BddRef::ZERO;
            for &i in ins {
                acc = m.or(acc, i)?;
            }
            m.not(acc)?
        }
        CF::Xor2 => m.xor(ins[0], ins[1])?,
        CF::Xnor2 => {
            let x = m.xor(ins[0], ins[1])?;
            m.not(x)?
        }
        CF::Aoi21 => {
            let ab = m.and(ins[0], ins[1])?;
            let o = m.or(ab, ins[2])?;
            m.not(o)?
        }
        CF::Oai21 => {
            let ab = m.or(ins[0], ins[1])?;
            let a = m.and(ab, ins[2])?;
            m.not(a)?
        }
        CF::Mux2 => m.ite(ins[2], ins[1], ins[0])?,
        CF::Maj3 => {
            let ab = m.and(ins[0], ins[1])?;
            let bc = m.and(ins[1], ins[2])?;
            let ac = m.and(ins[0], ins[2])?;
            let t = m.or(ab, bc)?;
            m.or(t, ac)?
        }
        CF::ClockGate | CF::Isolation => m.and(ins[0], ins[1])?,
        CF::Dff | CF::ScanDff => unreachable!("sequential cells handled by caller"),
    })
}

/// Checks combinational equivalence of two netlists.
///
/// The shared input space is `a`'s primary inputs plus its flops; `b` may
/// have extra primary inputs provided every extra position appears in
/// `b_tie_high`/`b_tie_low` (enables/scan pins added by transformations).
/// Extra primary *outputs* of `b` (e.g. scan-out) are ignored; the flop
/// counts must match.
///
/// # Errors
///
/// Returns [`EcError::InterfaceMismatch`] when the interfaces cannot be
/// aligned, or a netlist validation error.
pub fn check_equivalence(
    a: &Netlist,
    b: &Netlist,
    b_tie_high: &[usize],
    b_tie_low: &[usize],
    node_limit: usize,
) -> Result<EcVerdict, EcError> {
    let shared = a.primary_inputs().len();
    let a_flops = a.flops().len();
    if b.flops().len() != a_flops {
        return Err(EcError::InterfaceMismatch(format!(
            "flop counts differ: {} vs {}",
            a_flops,
            b.flops().len()
        )));
    }
    if b.primary_outputs().len() < a.primary_outputs().len() {
        return Err(EcError::InterfaceMismatch("b has fewer outputs than a".into()));
    }
    let num_vars = shared + a_flops;

    let mut m = BddManager::new(node_limit);
    let fa = build_functions(&mut m, a, shared, &[], &[])?;
    let fb = build_functions(&mut m, b, shared, b_tie_high, b_tie_low)?;
    match (fa, fb) {
        (Ok(fa), Ok(fb)) => {
            let checks = a.primary_outputs().len();
            for (i, &x) in fa.iter().enumerate().take(checks + a_flops) {
                // Map: a's output i ↔ b's output i (extra b outputs sit after
                // a's outputs per construction order) — align flop functions.
                let bi = if i < checks { i } else { b.primary_outputs().len() + (i - checks) };
                let y = fb[bi];
                if x != y {
                    let diff = match m.xor(x, y) {
                        Ok(d) => d,
                        Err(_) => return simulate_fallback(a, b, b_tie_high, b_tie_low),
                    };
                    if let Some(cex) = m.satisfy(diff, num_vars) {
                        return Ok(EcVerdict::Counterexample(cex));
                    }
                }
            }
            Ok(EcVerdict::Equivalent)
        }
        _ => simulate_fallback(a, b, b_tie_high, b_tie_low),
    }
}

/// Exhaustive simulation for small input spaces (≤ 20 shared variables).
fn simulate_fallback(
    a: &Netlist,
    b: &Netlist,
    b_tie_high: &[usize],
    b_tie_low: &[usize],
) -> Result<EcVerdict, EcError> {
    let shared = a.primary_inputs().len();
    let vars = shared + a.flops().len();
    if vars > 20 {
        return Ok(EcVerdict::Inconclusive);
    }
    let total = 1usize << vars;
    for base in (0..total).step_by(64) {
        // Pack 64 consecutive assignments into lanes.
        let mut a_pis = vec![0u64; shared];
        let mut state = vec![0u64; a.flops().len()];
        for lane in 0..64.min(total - base) {
            let bits = base + lane;
            for (v, pi) in a_pis.iter_mut().enumerate() {
                if bits >> v & 1 == 1 {
                    *pi |= 1 << lane;
                }
            }
            for (k, s) in state.iter_mut().enumerate() {
                if bits >> (shared + k) & 1 == 1 {
                    *s |= 1 << lane;
                }
            }
        }
        let mut b_pis = a_pis.clone();
        for i in shared..b.primary_inputs().len() {
            if b_tie_high.contains(&i) {
                b_pis.push(!0);
            } else if b_tie_low.contains(&i) {
                b_pis.push(0);
            } else {
                return Err(EcError::InterfaceMismatch(format!("untied extra input {i}")));
            }
        }
        let (oa, sa) = a.simulate64(&a_pis, &state);
        let (ob, sb) = b.simulate64(&b_pis, &state);
        let lanes = 64.min(total - base);
        for lane in 0..lanes {
            let mask = 1u64 << lane;
            let mismatch = oa
                .iter()
                .zip(ob.iter())
                .any(|(&x, &y)| (x ^ y) & mask != 0)
                || sa.iter().zip(sb.iter()).any(|(&x, &y)| (x ^ y) & mask != 0);
            if mismatch {
                let bits = base + lane;
                let cex = (0..vars).map(|v| bits >> v & 1 == 1).collect();
                return Ok(EcVerdict::Counterexample(cex));
            }
        }
    }
    Ok(EcVerdict::Equivalent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::MapGoal;
    use crate::synth::{synthesize, SynthesisEffort};
    use eda_netlist::{generate, Library};

    const LIMIT: usize = 1 << 20;

    #[test]
    fn synthesis_formally_verified() {
        let d = generate::ripple_carry_adder(8).unwrap();
        let adv =
            synthesize(&d, Library::generic(), SynthesisEffort::Advanced2016, MapGoal::Area)
                .unwrap();
        let verdict = check_equivalence(&d, &adv.netlist, &[], &[], LIMIT).unwrap();
        assert_eq!(verdict, EcVerdict::Equivalent);
    }

    #[test]
    fn counterexample_on_broken_netlist() {
        let d = generate::parity_tree(6).unwrap();
        // "Optimize" by replacing with a single AND — wrong.
        let mut bad = eda_netlist::Netlist::new("bad");
        let ins: Vec<_> = (0..6).map(|i| bad.add_input(format!("d{i}"))).collect();
        let mut acc = ins[0];
        for &i in &ins[1..] {
            acc = bad.add_gate_fn("g", CellFunction::And(2), &[acc, i]).unwrap();
        }
        bad.add_output("parity", acc);
        let verdict = check_equivalence(&d, &bad, &[], &[], LIMIT).unwrap();
        match verdict {
            EcVerdict::Counterexample(cex) => {
                // The cex must actually distinguish the two.
                let (oa, _) = d.simulate(&cex[..6], &[]);
                let (ob, _) = bad.simulate(&cex[..6], &[]);
                assert_ne!(oa, ob);
            }
            other => panic!("expected a counterexample, got {other:?}"),
        }
    }

    #[test]
    fn tie_high_enables_verified() {
        use eda_netlist::Netlist;
        // a: y = x0 & x1.   b: y = (x0 & x1) & en, en tied high.
        let mut a = Netlist::new("a");
        let x0 = a.add_input("x0");
        let x1 = a.add_input("x1");
        let y = a.add_gate_fn("g", CellFunction::And(2), &[x0, x1]).unwrap();
        a.add_output("y", y);
        let mut b = Netlist::new("b");
        let bx0 = b.add_input("x0");
        let bx1 = b.add_input("x1");
        let en = b.add_input("en");
        let t = b.add_gate_fn("g1", CellFunction::And(2), &[bx0, bx1]).unwrap();
        let y2 = b.add_gate_fn("g2", CellFunction::And(2), &[t, en]).unwrap();
        b.add_output("y", y2);
        assert_eq!(
            check_equivalence(&a, &b, &[2], &[], LIMIT).unwrap(),
            EcVerdict::Equivalent
        );
        // Tied low instead: constant 0 vs AND — counterexample at x0=x1=1.
        match check_equivalence(&a, &b, &[], &[2], LIMIT).unwrap() {
            EcVerdict::Counterexample(cex) => assert_eq!(&cex[..2], &[true, true]),
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn sequential_next_state_checked() {
        let d = generate::switch_fabric(3, 2).unwrap();
        let adv =
            synthesize(&d, Library::generic(), SynthesisEffort::Advanced2016, MapGoal::Area)
                .unwrap();
        assert_eq!(
            check_equivalence(&d, &adv.netlist, &[], &[], LIMIT).unwrap(),
            EcVerdict::Equivalent
        );
    }

    #[test]
    fn tiny_budget_falls_back_to_simulation() {
        let d = generate::parity_tree(8).unwrap();
        let adv =
            synthesize(&d, Library::generic(), SynthesisEffort::Advanced2016, MapGoal::Area)
                .unwrap();
        // 32-node budget is hopeless for BDDs; 8 inputs are enumerable.
        let verdict = check_equivalence(&d, &adv.netlist, &[], &[], 32).unwrap();
        assert_eq!(verdict, EcVerdict::Equivalent);
    }

    #[test]
    fn interface_mismatch_reported() {
        let a = generate::parity_tree(4).unwrap();
        let b = generate::parity_tree(6).unwrap();
        assert!(matches!(
            check_equivalence(&a, &b, &[], &[], LIMIT),
            Err(EcError::InterfaceMismatch(_)) | Ok(EcVerdict::Counterexample(_))
        ));
    }

    use eda_netlist::CellFunction;
}
