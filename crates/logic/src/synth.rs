//! Synthesis flow presets: the decade-old baseline versus the advanced flow.
//!
//! [`synthesize`] is the crate's front door: netlist in, optimized mapped
//! netlist out. Two presets bracket the panel's decade:
//!
//! * [`SynthesisEffort::Baseline2006`] — build the AIG, decompose every node
//!   into NAND2/INV. No restructuring, no cut matching. This is the strawman
//!   Domic says the industry has improved on by ~30 %.
//! * [`SynthesisEffort::Advanced2016`] — balance + iterated cut-based
//!   refactoring on the AIG, then phase-complete cut mapping onto the full
//!   library (area or delay goal).

use crate::aig::{Aig, AigError};
use crate::map::{map_aig_threaded, map_naive, MapError, MapGoal, MapOutcome};
use eda_netlist::{Library, Netlist};
use eda_par::ParStats;
use std::sync::Arc;

/// Synthesis preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SynthesisEffort {
    /// 2006-era baseline: no optimization, NAND2/INV decomposition.
    Baseline2006,
    /// 2016-era flow: AIG optimization + library-aware mapping.
    Advanced2016,
}

/// Errors from synthesis.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisError {
    /// The input netlist could not be converted to an AIG.
    Aig(AigError),
    /// Technology mapping failed.
    Map(MapError),
}

impl std::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthesisError::Aig(e) => write!(f, "aig construction failed: {e}"),
            SynthesisError::Map(e) => write!(f, "mapping failed: {e}"),
        }
    }
}

impl std::error::Error for SynthesisError {}

impl From<AigError> for SynthesisError {
    fn from(e: AigError) -> Self {
        SynthesisError::Aig(e)
    }
}

impl From<MapError> for SynthesisError {
    fn from(e: MapError) -> Self {
        SynthesisError::Map(e)
    }
}

/// Result of a synthesis run with before/after metrics.
#[derive(Debug, Clone)]
pub struct SynthesisOutcome {
    /// The mapped netlist.
    pub netlist: Netlist,
    /// AND nodes in the unoptimized AIG.
    pub aig_nodes_before: usize,
    /// AND nodes after optimization (equals `before` for the baseline).
    pub aig_nodes_after: usize,
    /// Mapped cell area in µm².
    pub area_um2: f64,
    /// Estimated critical path in ps.
    pub delay_ps: f64,
    /// Mapped combinational cell count.
    pub cells: usize,
    /// Per-pass AIG optimization trace (empty for the 2006 baseline, which
    /// maps the raw AIG).
    pub passes: Vec<AigPass>,
}

/// Synthesizes `input` onto `lib` at the given effort and goal.
///
/// # Errors
///
/// Fails if the input contains non-synthesizable cells, or if the library
/// lacks the primitives mapping needs (inverter, NAND2/AND2, DFF for
/// sequential designs).
///
/// # Examples
///
/// ```
/// use eda_logic::{synthesize, MapGoal, SynthesisEffort};
/// use eda_netlist::{generate, Library};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let design = generate::ripple_carry_adder(8)?;
/// let baseline = synthesize(
///     &design,
///     Library::nand_inv_2006(),
///     SynthesisEffort::Baseline2006,
///     MapGoal::Area,
/// )?;
/// let advanced = synthesize(
///     &design,
///     Library::generic(),
///     SynthesisEffort::Advanced2016,
///     MapGoal::Area,
/// )?;
/// assert!(advanced.area_um2 < baseline.area_um2);
/// # Ok(())
/// # }
/// ```
pub fn synthesize(
    input: &Netlist,
    lib: Arc<Library>,
    effort: SynthesisEffort,
    goal: MapGoal,
) -> Result<SynthesisOutcome, SynthesisError> {
    synthesize_threaded(input, lib, effort, goal, 1).map(|(out, _)| out)
}

/// [`synthesize`] with the mapping kernel fanned out across `threads`
/// workers (`0` = all cores) via [`map_aig_threaded`].
///
/// The outcome is bit-identical to [`synthesize`] at any thread count; the
/// returned [`ParStats`] records the mapper's parallel dispatches for
/// telemetry and speedup projection. The 2006 baseline has no parallel
/// kernel, so its stats are empty (`chunks == 0`).
///
/// # Errors
///
/// Same contract as [`synthesize`].
pub fn synthesize_threaded(
    input: &Netlist,
    lib: Arc<Library>,
    effort: SynthesisEffort,
    goal: MapGoal,
    threads: usize,
) -> Result<(SynthesisOutcome, ParStats), SynthesisError> {
    let (aig, boundary) = Aig::from_netlist(input)?;
    let before = aig.num_ands();
    let (optimized, outcome, passes, par): (Aig, MapOutcome, Vec<AigPass>, ParStats) =
        match effort {
            SynthesisEffort::Baseline2006 => {
                let m = map_naive(&aig, &boundary, lib)?;
                (aig, m, Vec::new(), ParStats::empty())
            }
            SynthesisEffort::Advanced2016 => {
                let (opt, passes) = optimize_aig_traced(&aig);
                let (m, par) = map_aig_threaded(&opt, &boundary, lib, goal, threads)?;
                (opt, m, passes, par)
            }
        };
    Ok((
        SynthesisOutcome {
            netlist: outcome.netlist,
            aig_nodes_before: before,
            aig_nodes_after: optimized.num_ands(),
            area_um2: outcome.area_um2,
            delay_ps: outcome.delay_ps,
            cells: outcome.cells,
            passes,
        },
        par,
    ))
}

/// One pass of the AIG optimization script, as recorded for QoR provenance:
/// node counts around the pass and whether its result was kept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AigPass {
    /// Pass name (`"balance"` or `"rewrite"`).
    pub name: &'static str,
    /// AND nodes going in.
    pub nodes_before: usize,
    /// AND nodes the pass produced (kept or not).
    pub nodes_after: usize,
    /// Whether the pass result was accepted by the keep-if-not-regressing
    /// rule.
    pub kept: bool,
}

/// The advanced-flow AIG script: `balance; rewrite; rewrite; balance`,
/// keeping each pass only if it does not regress node count.
pub fn optimize_aig(aig: &Aig) -> Aig {
    optimize_aig_traced(aig).0
}

/// [`optimize_aig`] plus a per-pass provenance trace. The optimized AIG is
/// bit-identical to `optimize_aig`'s; the trace is a pure function of the
/// input.
pub fn optimize_aig_traced(aig: &Aig) -> (Aig, Vec<AigPass>) {
    let mut passes = Vec::new();
    let mut cur = aig.balance();
    let kept = !(cur.num_ands() > aig.num_ands() && cur.depth() >= aig.depth());
    passes.push(AigPass {
        name: "balance",
        nodes_before: aig.num_ands(),
        nodes_after: cur.num_ands(),
        kept,
    });
    if !kept {
        cur = aig.clone();
    }
    // Rewrite to a fixpoint (bounded), keeping only non-regressing passes.
    for _ in 0..6 {
        let next = cur.rewrite();
        let kept = next.num_ands() < cur.num_ands();
        passes.push(AigPass {
            name: "rewrite",
            nodes_before: cur.num_ands(),
            nodes_after: next.num_ands(),
            kept,
        });
        if kept {
            cur = next;
        } else {
            break;
        }
    }
    let balanced = cur.balance();
    let kept = balanced.num_ands() <= cur.num_ands() || balanced.depth() < cur.depth();
    passes.push(AigPass {
        name: "balance",
        nodes_before: cur.num_ands(),
        nodes_after: balanced.num_ands(),
        kept,
    });
    if kept {
        cur = balanced;
    }
    (cur, passes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_netlist::generate;

    fn check_equiv(a: &Netlist, b: &Netlist) {
        let k = a.primary_inputs().len();
        let pats: Vec<u64> =
            (0..k).map(|i| 0xD6E8_FEB8_6659_FD93u64.wrapping_mul(i as u64 + 1)).collect();
        let (o1, s1) = a.simulate64(&pats, &vec![0; a.flops().len()]);
        let (o2, s2) = b.simulate64(&pats, &vec![0; b.flops().len()]);
        assert_eq!(o1, o2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn advanced_beats_baseline_on_suite() {
        let designs: Vec<Netlist> = vec![
            generate::ripple_carry_adder(8).unwrap(),
            generate::array_multiplier(4).unwrap(),
            generate::parity_tree(16).unwrap(),
            // Seed pins a representative random cloud for the vendored
            // deterministic PRNG (third_party/rand).
            generate::random_logic(generate::RandomLogicConfig {
                gates: 400,
                seed: 7,
                ..Default::default()
            })
            .unwrap(),
        ];
        let mut total_base = 0.0;
        let mut total_adv = 0.0;
        for d in &designs {
            let base = synthesize(
                d,
                Library::nand_inv_2006(),
                SynthesisEffort::Baseline2006,
                MapGoal::Area,
            )
            .unwrap();
            let adv =
                synthesize(d, Library::generic(), SynthesisEffort::Advanced2016, MapGoal::Area)
                    .unwrap();
            check_equiv(d, &base.netlist);
            check_equiv(d, &adv.netlist);
            total_base += base.area_um2;
            total_adv += adv.area_um2;
        }
        let gain = 1.0 - total_adv / total_base;
        assert!(gain > 0.20, "advanced flow should save >20% area, got {:.1}%", gain * 100.0);
    }

    #[test]
    fn optimize_never_grows_much() {
        // Seed pins a representative random cloud for the vendored
        // deterministic PRNG (third_party/rand).
        let d = generate::random_logic(generate::RandomLogicConfig {
            gates: 350,
            seed: 7,
            ..Default::default()
        })
        .unwrap();
        let (aig, _) = Aig::from_netlist(&d).unwrap();
        let opt = optimize_aig(&aig);
        assert!(opt.num_ands() <= aig.num_ands() + aig.num_ands() / 10);
        let pats: Vec<u64> =
            (0..aig.num_pis()).map(|i| 0xCBF2_9CE4_8422_2325u64.rotate_left(i as u32)).collect();
        assert_eq!(aig.simulate64(&pats), opt.simulate64(&pats));
    }

    #[test]
    fn delay_goal_shortens_critical_path() {
        let d = generate::ripple_carry_adder(16).unwrap();
        let area =
            synthesize(&d, Library::generic(), SynthesisEffort::Advanced2016, MapGoal::Area)
                .unwrap();
        let delay =
            synthesize(&d, Library::generic(), SynthesisEffort::Advanced2016, MapGoal::Delay)
                .unwrap();
        check_equiv(&d, &delay.netlist);
        assert!(delay.delay_ps <= area.delay_ps, "delay mapping must not be slower");
    }

    #[test]
    fn sequential_designs_synthesize() {
        let d = generate::switch_fabric(4, 3).unwrap();
        let adv = synthesize(&d, Library::generic(), SynthesisEffort::Advanced2016, MapGoal::Area)
            .unwrap();
        assert_eq!(adv.netlist.flops().len(), d.flops().len());
        check_equiv(&d, &adv.netlist);
    }
}
