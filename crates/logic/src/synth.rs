//! Synthesis flow presets: the decade-old baseline versus the advanced flow.
//!
//! [`synthesize`] is the crate's front door: netlist in, optimized mapped
//! netlist out. Two presets bracket the panel's decade:
//!
//! * [`SynthesisEffort::Baseline2006`] — build the AIG, decompose every node
//!   into NAND2/INV. No restructuring, no cut matching. This is the strawman
//!   Domic says the industry has improved on by ~30 %.
//! * [`SynthesisEffort::Advanced2016`] — balance + iterated cut-based
//!   refactoring on the AIG, then phase-complete cut mapping onto the full
//!   library (area or delay goal).

use crate::aig::{Aig, AigError};
use crate::map::{map_aig_threaded, map_naive, MapError, MapGoal, MapOutcome};
use eda_netlist::memo::fnv1a;
use eda_netlist::{Library, Netlist, SubstageMemo};
use eda_par::ParStats;
use std::sync::Arc;

/// Default bound on the rewrite fixpoint iteration in the advanced script.
pub const DEFAULT_REWRITE_PASSES: usize = 6;

/// Synthesis preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SynthesisEffort {
    /// 2006-era baseline: no optimization, NAND2/INV decomposition.
    Baseline2006,
    /// 2016-era flow: AIG optimization + library-aware mapping.
    Advanced2016,
}

/// Errors from synthesis.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisError {
    /// The input netlist could not be converted to an AIG.
    Aig(AigError),
    /// Technology mapping failed.
    Map(MapError),
}

impl std::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthesisError::Aig(e) => write!(f, "aig construction failed: {e}"),
            SynthesisError::Map(e) => write!(f, "mapping failed: {e}"),
        }
    }
}

impl std::error::Error for SynthesisError {}

impl From<AigError> for SynthesisError {
    fn from(e: AigError) -> Self {
        SynthesisError::Aig(e)
    }
}

impl From<MapError> for SynthesisError {
    fn from(e: MapError) -> Self {
        SynthesisError::Map(e)
    }
}

/// Result of a synthesis run with before/after metrics.
#[derive(Debug, Clone)]
pub struct SynthesisOutcome {
    /// The mapped netlist.
    pub netlist: Netlist,
    /// AND nodes in the unoptimized AIG.
    pub aig_nodes_before: usize,
    /// AND nodes after optimization (equals `before` for the baseline).
    pub aig_nodes_after: usize,
    /// Mapped cell area in µm².
    pub area_um2: f64,
    /// Estimated critical path in ps.
    pub delay_ps: f64,
    /// Mapped combinational cell count.
    pub cells: usize,
    /// Per-pass AIG optimization trace (empty for the 2006 baseline, which
    /// maps the raw AIG).
    pub passes: Vec<AigPass>,
}

/// Synthesizes `input` onto `lib` at the given effort and goal.
///
/// # Errors
///
/// Fails if the input contains non-synthesizable cells, or if the library
/// lacks the primitives mapping needs (inverter, NAND2/AND2, DFF for
/// sequential designs).
///
/// # Examples
///
/// ```
/// use eda_logic::{synthesize, MapGoal, SynthesisEffort};
/// use eda_netlist::{generate, Library};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let design = generate::ripple_carry_adder(8)?;
/// let baseline = synthesize(
///     &design,
///     Library::nand_inv_2006(),
///     SynthesisEffort::Baseline2006,
///     MapGoal::Area,
/// )?;
/// let advanced = synthesize(
///     &design,
///     Library::generic(),
///     SynthesisEffort::Advanced2016,
///     MapGoal::Area,
/// )?;
/// assert!(advanced.area_um2 < baseline.area_um2);
/// # Ok(())
/// # }
/// ```
pub fn synthesize(
    input: &Netlist,
    lib: Arc<Library>,
    effort: SynthesisEffort,
    goal: MapGoal,
) -> Result<SynthesisOutcome, SynthesisError> {
    synthesize_threaded(input, lib, effort, goal, 1).map(|(out, _)| out)
}

/// [`synthesize`] with the mapping kernel fanned out across `threads`
/// workers (`0` = all cores) via [`map_aig_threaded`].
///
/// The outcome is bit-identical to [`synthesize`] at any thread count; the
/// returned [`ParStats`] records the mapper's parallel dispatches for
/// telemetry and speedup projection. The 2006 baseline has no parallel
/// kernel, so its stats are empty (`chunks == 0`).
///
/// # Errors
///
/// Same contract as [`synthesize`].
pub fn synthesize_threaded(
    input: &Netlist,
    lib: Arc<Library>,
    effort: SynthesisEffort,
    goal: MapGoal,
    threads: usize,
) -> Result<(SynthesisOutcome, ParStats), SynthesisError> {
    synthesize_threaded_memo(input, lib, effort, goal, threads, DEFAULT_REWRITE_PASSES, None)
}

/// [`synthesize_threaded`] with the optimization script parameterized:
/// `rewrite_passes` bounds the rewrite fixpoint (the default script uses
/// [`DEFAULT_REWRITE_PASSES`]), and `memo` lets each AIG pass replay from a
/// persistent sub-stage store — a memo hit is bit-identical to the
/// recompute it stands in for, so the outcome depends only on the inputs
/// and `rewrite_passes`, never on cache state.
///
/// # Errors
///
/// Same contract as [`synthesize`].
pub fn synthesize_threaded_memo(
    input: &Netlist,
    lib: Arc<Library>,
    effort: SynthesisEffort,
    goal: MapGoal,
    threads: usize,
    rewrite_passes: usize,
    memo: Option<&dyn SubstageMemo>,
) -> Result<(SynthesisOutcome, ParStats), SynthesisError> {
    let (aig, boundary) = Aig::from_netlist(input)?;
    let before = aig.num_ands();
    let (optimized, outcome, passes, par): (Aig, MapOutcome, Vec<AigPass>, ParStats) =
        match effort {
            SynthesisEffort::Baseline2006 => {
                let m = map_naive(&aig, &boundary, lib)?;
                (aig, m, Vec::new(), ParStats::empty())
            }
            SynthesisEffort::Advanced2016 => {
                let (opt, passes) = optimize_aig_scripted(&aig, rewrite_passes, memo);
                let (m, par) = map_aig_threaded(&opt, &boundary, lib, goal, threads)?;
                (opt, m, passes, par)
            }
        };
    Ok((
        SynthesisOutcome {
            netlist: outcome.netlist,
            aig_nodes_before: before,
            aig_nodes_after: optimized.num_ands(),
            area_um2: outcome.area_um2,
            delay_ps: outcome.delay_ps,
            cells: outcome.cells,
            passes,
        },
        par,
    ))
}

/// One pass of the AIG optimization script, as recorded for QoR provenance:
/// node counts around the pass and whether its result was kept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AigPass {
    /// Pass name (`"balance"` or `"rewrite"`).
    pub name: &'static str,
    /// AND nodes going in.
    pub nodes_before: usize,
    /// AND nodes the pass produced (kept or not).
    pub nodes_after: usize,
    /// Whether the pass result was accepted by the keep-if-not-regressing
    /// rule.
    pub kept: bool,
}

/// The advanced-flow AIG script: `balance; rewrite*; balance`, keeping each
/// pass only if it does not regress node count.
pub fn optimize_aig(aig: &Aig) -> Aig {
    optimize_aig_traced(aig).0
}

/// [`optimize_aig`] plus a per-pass provenance trace. The optimized AIG is
/// bit-identical to `optimize_aig`'s; the trace is a pure function of the
/// input.
pub fn optimize_aig_traced(aig: &Aig) -> (Aig, Vec<AigPass>) {
    optimize_aig_scripted(aig, DEFAULT_REWRITE_PASSES, None)
}

/// The memo kinds the optimization script stores pass results under: the
/// opening balance, the bounded rewrite fixpoint, and the closing balance.
/// Each entry is keyed on the FNV of `"<kind>|<input aig digest>"`, so a
/// pass hits whenever its *own* input recurs — across runs, designs, and
/// script lengths.
pub const AIG_MEMO_KINDS: [&str; 3] = ["aig.balpre", "aig.rw", "aig.balpost"];

/// [`optimize_aig_traced`] with a parameterized rewrite bound and an
/// optional per-pass memo. Every pass first consults the memo keyed on its
/// input digest; a hit replays the recorded keep/break decision and result
/// graph, a miss computes and stores. Results are bit-identical with or
/// without the memo.
pub fn optimize_aig_scripted(
    aig: &Aig,
    rewrite_passes: usize,
    memo: Option<&dyn SubstageMemo>,
) -> (Aig, Vec<AigPass>) {
    let mut passes = Vec::with_capacity(rewrite_passes + 2);
    let mut cur = aig.clone();

    let (pass, next) = load_pass(memo, "aig.balpre", &cur).unwrap_or_else(|| {
        let cand = cur.balance();
        let kept = !(cand.num_ands() > cur.num_ands() && cand.depth() >= cur.depth());
        let pass = AigPass {
            name: "balance",
            nodes_before: cur.num_ands(),
            nodes_after: cand.num_ands(),
            kept,
        };
        store_pass(memo, "aig.balpre", &cur, &pass, kept.then_some(&cand));
        (pass, kept.then_some(cand))
    });
    passes.push(pass);
    if let Some(n) = next {
        cur = n;
    }

    // Rewrite to a fixpoint (bounded), keeping only non-regressing passes.
    for _ in 0..rewrite_passes {
        let (pass, next) = load_pass(memo, "aig.rw", &cur).unwrap_or_else(|| {
            let cand = cur.rewrite();
            let kept = cand.num_ands() < cur.num_ands();
            let pass = AigPass {
                name: "rewrite",
                nodes_before: cur.num_ands(),
                nodes_after: cand.num_ands(),
                kept,
            };
            store_pass(memo, "aig.rw", &cur, &pass, kept.then_some(&cand));
            (pass, kept.then_some(cand))
        });
        let kept = pass.kept;
        passes.push(pass);
        match next {
            Some(n) if kept => cur = n,
            _ => break,
        }
    }

    let (pass, next) = load_pass(memo, "aig.balpost", &cur).unwrap_or_else(|| {
        let cand = cur.balance();
        let kept = cand.num_ands() <= cur.num_ands() || cand.depth() < cur.depth();
        let pass = AigPass {
            name: "balance",
            nodes_before: cur.num_ands(),
            nodes_after: cand.num_ands(),
            kept,
        };
        store_pass(memo, "aig.balpost", &cur, &pass, kept.then_some(&cand));
        (pass, kept.then_some(cand))
    });
    passes.push(pass);
    if let Some(n) = next {
        cur = n;
    }
    (cur, passes)
}

/// Memo key for one script pass: FNV of the kind joined with the input
/// graph's content digest.
fn pass_key(kind: &str, input: &Aig) -> u64 {
    fnv1a(format!("{kind}|{:016x}", input.digest()).bytes())
}

/// Loads and validates one memoized pass result. `None` means miss or
/// malformed payload — the caller recomputes either way.
fn load_pass(
    memo: Option<&dyn SubstageMemo>,
    kind: &str,
    input: &Aig,
) -> Option<(AigPass, Option<Aig>)> {
    let payload = memo?.load(kind, pass_key(kind, input))?;
    let (head, rest) = payload.split_once('\n')?;
    let mut f = head.split(' ');
    if f.next()? != "aigpass" || f.next()? != "v1" {
        return None;
    }
    let name = match f.next()? {
        "balance" => "balance",
        "rewrite" => "rewrite",
        _ => return None,
    };
    let nodes_before = f.next()?.parse().ok()?;
    let nodes_after = f.next()?.parse().ok()?;
    let kept = f.next()? == "1";
    let has_body = f.next()? == "1";
    if f.next().is_some() || kept != has_body {
        return None;
    }
    let body = if has_body { Some(Aig::from_store_text(rest)?) } else { None };
    Some((AigPass { name, nodes_before, nodes_after, kept }, body))
}

/// Stores one pass result under the memo: a one-line header (pass meta +
/// keep decision) followed by the result graph when the pass was kept.
fn store_pass(
    memo: Option<&dyn SubstageMemo>,
    kind: &str,
    input: &Aig,
    pass: &AigPass,
    result: Option<&Aig>,
) {
    if let Some(m) = memo {
        let mut payload = format!(
            "aigpass v1 {} {} {} {} {}\n",
            pass.name,
            pass.nodes_before,
            pass.nodes_after,
            pass.kept as u8,
            result.is_some() as u8
        );
        if let Some(r) = result {
            payload.push_str(&r.to_store_text());
        }
        m.store(kind, pass_key(kind, input), &payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_netlist::generate;

    fn check_equiv(a: &Netlist, b: &Netlist) {
        let k = a.primary_inputs().len();
        let pats: Vec<u64> =
            (0..k).map(|i| 0xD6E8_FEB8_6659_FD93u64.wrapping_mul(i as u64 + 1)).collect();
        let (o1, s1) = a.simulate64(&pats, &vec![0; a.flops().len()]);
        let (o2, s2) = b.simulate64(&pats, &vec![0; b.flops().len()]);
        assert_eq!(o1, o2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn advanced_beats_baseline_on_suite() {
        let designs: Vec<Netlist> = vec![
            generate::ripple_carry_adder(8).unwrap(),
            generate::array_multiplier(4).unwrap(),
            generate::parity_tree(16).unwrap(),
            // Seed pins a representative random cloud for the vendored
            // deterministic PRNG (third_party/rand).
            generate::random_logic(generate::RandomLogicConfig {
                gates: 400,
                seed: 7,
                ..Default::default()
            })
            .unwrap(),
        ];
        let mut total_base = 0.0;
        let mut total_adv = 0.0;
        for d in &designs {
            let base = synthesize(
                d,
                Library::nand_inv_2006(),
                SynthesisEffort::Baseline2006,
                MapGoal::Area,
            )
            .unwrap();
            let adv =
                synthesize(d, Library::generic(), SynthesisEffort::Advanced2016, MapGoal::Area)
                    .unwrap();
            check_equiv(d, &base.netlist);
            check_equiv(d, &adv.netlist);
            total_base += base.area_um2;
            total_adv += adv.area_um2;
        }
        let gain = 1.0 - total_adv / total_base;
        assert!(gain > 0.20, "advanced flow should save >20% area, got {:.1}%", gain * 100.0);
    }

    #[test]
    fn optimize_never_grows_much() {
        // Seed pins a representative random cloud for the vendored
        // deterministic PRNG (third_party/rand).
        let d = generate::random_logic(generate::RandomLogicConfig {
            gates: 350,
            seed: 7,
            ..Default::default()
        })
        .unwrap();
        let (aig, _) = Aig::from_netlist(&d).unwrap();
        let opt = optimize_aig(&aig);
        assert!(opt.num_ands() <= aig.num_ands() + aig.num_ands() / 10);
        let pats: Vec<u64> =
            (0..aig.num_pis()).map(|i| 0xCBF2_9CE4_8422_2325u64.rotate_left(i as u32)).collect();
        assert_eq!(aig.simulate64(&pats), opt.simulate64(&pats));
    }

    #[test]
    fn delay_goal_shortens_critical_path() {
        let d = generate::ripple_carry_adder(16).unwrap();
        let area =
            synthesize(&d, Library::generic(), SynthesisEffort::Advanced2016, MapGoal::Area)
                .unwrap();
        let delay =
            synthesize(&d, Library::generic(), SynthesisEffort::Advanced2016, MapGoal::Delay)
                .unwrap();
        check_equiv(&d, &delay.netlist);
        assert!(delay.delay_ps <= area.delay_ps, "delay mapping must not be slower");
    }

    struct CountingMemo {
        map: std::cell::RefCell<std::collections::HashMap<(String, u64), String>>,
        hits: std::cell::Cell<usize>,
        misses: std::cell::Cell<usize>,
    }

    impl CountingMemo {
        fn new() -> CountingMemo {
            CountingMemo {
                map: std::cell::RefCell::new(std::collections::HashMap::new()),
                hits: std::cell::Cell::new(0),
                misses: std::cell::Cell::new(0),
            }
        }
    }

    impl SubstageMemo for CountingMemo {
        fn load(&self, kind: &str, key: u64) -> Option<String> {
            let hit = self.map.borrow().get(&(kind.to_string(), key)).cloned();
            match &hit {
                Some(_) => self.hits.set(self.hits.get() + 1),
                None => self.misses.set(self.misses.get() + 1),
            }
            hit
        }
        fn store(&self, kind: &str, key: u64, payload: &str) {
            self.map.borrow_mut().insert((kind.to_string(), key), payload.to_string());
        }
    }

    #[test]
    fn memoized_script_replays_bit_identically() {
        let d = generate::switch_fabric(3, 3).unwrap();
        let (aig, _) = Aig::from_netlist(&d).unwrap();
        let (plain, plain_passes) = optimize_aig_scripted(&aig, DEFAULT_REWRITE_PASSES, None);

        let memo = CountingMemo::new();
        let (cold, cold_passes) =
            optimize_aig_scripted(&aig, DEFAULT_REWRITE_PASSES, Some(&memo));
        assert_eq!(cold.digest(), plain.digest(), "memo writes must not perturb the script");
        assert_eq!(cold_passes, plain_passes);
        assert_eq!(memo.hits.get(), 0);
        let cold_misses = memo.misses.get();
        assert_eq!(cold_misses, cold_passes.len());

        let (warm, warm_passes) =
            optimize_aig_scripted(&aig, DEFAULT_REWRITE_PASSES, Some(&memo));
        assert_eq!(warm.digest(), plain.digest(), "warm replay is bit-identical");
        assert_eq!(warm_passes, plain_passes);
        assert_eq!(memo.hits.get(), cold_passes.len(), "every pass replays");
        assert_eq!(memo.misses.get(), cold_misses, "no new misses when warm");
    }

    #[test]
    fn shortened_script_replays_its_prefix_from_the_memo() {
        let d = generate::switch_fabric(3, 3).unwrap();
        let (aig, _) = Aig::from_netlist(&d).unwrap();
        let memo = CountingMemo::new();
        let (_, full_passes) = optimize_aig_scripted(&aig, DEFAULT_REWRITE_PASSES, Some(&memo));
        memo.hits.set(0);

        // One fewer rewrite pass: everything the edit does not touch — the
        // opening balance and the surviving rewrite prefix — hits.
        let shorter = DEFAULT_REWRITE_PASSES - 1;
        let (edited, edited_passes) = optimize_aig_scripted(&aig, shorter, Some(&memo));
        let (ref_edited, ref_passes) = optimize_aig_scripted(&aig, shorter, None);
        assert_eq!(edited.digest(), ref_edited.digest(), "memo never changes QoR");
        assert_eq!(edited_passes, ref_passes);
        assert!(memo.hits.get() >= 1, "the edit must warm-replay at least one pass");
        assert!(edited_passes.len() <= full_passes.len());
    }

    #[test]
    fn sequential_designs_synthesize() {
        let d = generate::switch_fabric(4, 3).unwrap();
        let adv = synthesize(&d, Library::generic(), SynthesisEffort::Advanced2016, MapGoal::Area)
            .unwrap();
        assert_eq!(adv.netlist.flops().len(), d.flops().len());
        check_equiv(&d, &adv.netlist);
    }
}
