//! Espresso-style heuristic two-level minimization.
//!
//! Macii's position statement opens with the lineage: *"Since the first wave
//! of algorithms and tools for logic optimization (e.g., Espresso, Mini, MIS,
//! SIS, etc.), innovation in EDA has gone hand-in-hand with technology
//! progress."* This module implements the classic loop of that first wave:
//!
//! ```text
//! loop { EXPAND -> IRREDUNDANT -> REDUCE } until cost stops improving
//! ```
//!
//! built on unate-recursive tautology and complementation, operating on the
//! [`Cover`]/[`Cube`] positional-cube representation.

use crate::cube::{Cover, Cube};

/// Result of a minimization run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinimizeOutcome {
    /// The minimized cover.
    pub cover: Cover,
    /// Cube count before/after.
    pub cubes_before: usize,
    /// Cube count after minimization.
    pub cubes_after: usize,
    /// Literal cost before minimization.
    pub literals_before: u32,
    /// Literal cost after minimization.
    pub literals_after: u32,
    /// Number of expand/irredundant/reduce passes executed.
    pub passes: u32,
}

/// Selects the most-binate splitting variable (appears in the most cubes in
/// both polarities). Falls back to the most-bound variable.
fn binate_select(cover: &Cover) -> Option<usize> {
    let n = cover.num_vars();
    let mut best: Option<(usize, u32, u32)> = None; // (var, min(p,n), p+n)
    for v in 0..n {
        let mut pos = 0u32;
        let mut neg = 0u32;
        for c in cover.cubes() {
            match c.literal(v) {
                0b01 => pos += 1,
                0b10 => neg += 1,
                _ => {}
            }
        }
        if pos + neg == 0 {
            continue;
        }
        let key = (pos.min(neg), pos + neg);
        match best {
            None => best = Some((v, key.0, key.1)),
            Some((_, bk0, bk1)) => {
                if key.0 > bk0 || (key.0 == bk0 && key.1 > bk1) {
                    best = Some((v, key.0, key.1));
                }
            }
        }
    }
    best.map(|(v, _, _)| v)
}

/// Unate-recursive tautology check: does the cover equal constant 1?
pub fn tautology(cover: &Cover) -> bool {
    // Quick exits.
    if cover.cubes().iter().any(|c| c.is_full()) {
        return true;
    }
    if cover.is_empty() {
        return false;
    }
    let n = cover.num_vars();
    // Unate reduction: a variable appearing in only one polarity cannot make
    // the cover tautological unless the cubes not depending on it already do.
    // (Handled implicitly by the split; here we only pick binate vars when
    // possible and otherwise test the unate shortcut.)
    match binate_select(cover) {
        None => {
            // All cubes are the full cube or the cover is empty; covered above.
            false
        }
        Some(v) => {
            // For a unate variable, the standard shortcut applies: if v is
            // unate, the cover is a tautology iff the cubes with v dropped
            // that don't depend on v are a tautology. The cofactor recursion
            // below subsumes this correctly, at some cost.
            let p1 = Cube::full(n).with_literal(v, true);
            let p0 = Cube::full(n).with_literal(v, false);
            tautology(&cover.cofactor(&p1)) && tautology(&cover.cofactor(&p0))
        }
    }
}

/// Recursive complementation: returns a cover of the complement.
pub fn complement(cover: &Cover) -> Cover {
    let n = cover.num_vars();
    if cover.is_empty() {
        return Cover::tautology_cover(n);
    }
    if cover.cubes().iter().any(|c| c.is_full()) {
        return Cover::new(n);
    }
    if cover.len() == 1 {
        // De Morgan on a single cube: one cube per bound literal.
        let c = cover.cubes()[0];
        let mut out = Cover::new(n);
        for v in 0..n {
            match c.literal(v) {
                0b01 => out.push(Cube::full(n).with_literal(v, false)),
                0b10 => out.push(Cube::full(n).with_literal(v, true)),
                _ => {}
            }
        }
        return out;
    }
    let v = binate_select(cover).unwrap_or(0);
    let p1 = Cube::full(n).with_literal(v, true);
    let p0 = Cube::full(n).with_literal(v, false);
    let c1 = complement(&cover.cofactor(&p1));
    let c0 = complement(&cover.cofactor(&p0));
    let mut out = Cover::new(n);
    for c in c1.cubes() {
        out.push(c.with_literal(v, true));
    }
    for c in c0.cubes() {
        out.push(c.with_literal(v, false));
    }
    out.remove_contained();
    out
}

/// Whether cube `c` is covered by `cover` (with optional don't-cares merged
/// in by the caller): checked as tautology of the cofactor.
pub fn cube_covered(c: &Cube, cover: &Cover) -> bool {
    tautology(&cover.cofactor(c))
}

/// EXPAND: enlarges each cube against the OFF-set, then drops contained
/// cubes. Cubes are processed largest-first (the classic heuristic order).
pub fn expand(cover: &Cover, off: &Cover) -> Cover {
    let n = cover.num_vars();
    let mut cubes: Vec<Cube> = cover.cubes().to_vec();
    cubes.sort_by_key(|c| c.literal_count());
    let mut out = Cover::new(n);
    for &cube in &cubes {
        let mut c = cube;
        for v in 0..n {
            if c.literal(v) == 0b11 {
                continue;
            }
            let raised = c.raised(v);
            // Legal iff the raised cube still misses the OFF-set.
            let hits_off = off.cubes().iter().any(|o| raised.distance(o) == 0);
            if !hits_off {
                c = raised;
            }
        }
        out.push(c);
    }
    out.remove_contained();
    out
}

/// IRREDUNDANT: removes cubes covered by the rest of the cover plus the
/// don't-care set.
pub fn irredundant(cover: &Cover, dc: &Cover) -> Cover {
    let n = cover.num_vars();
    let mut kept: Vec<Cube> = cover.cubes().to_vec();
    let mut i = 0;
    while i < kept.len() {
        let c = kept[i];
        let mut rest = Cover::new(n);
        for (j, &k) in kept.iter().enumerate() {
            if j != i {
                rest.push(k);
            }
        }
        rest.extend(dc.cubes().iter().copied());
        if cube_covered(&c, &rest) {
            kept.remove(i);
        } else {
            i += 1;
        }
    }
    let mut out = Cover::new(n);
    out.extend(kept);
    out
}

/// REDUCE: shrinks each cube to the smallest cube that still covers the part
/// of the ON-set no other cube covers.
pub fn reduce(cover: &Cover, dc: &Cover) -> Cover {
    let n = cover.num_vars();
    let mut out_cubes: Vec<Cube> = cover.cubes().to_vec();
    // Process largest cubes first.
    let mut order: Vec<usize> = (0..out_cubes.len()).collect();
    order.sort_by_key(|&i| out_cubes[i].literal_count());
    for &i in &order {
        let c = out_cubes[i];
        let mut rest = Cover::new(n);
        for (j, &k) in out_cubes.iter().enumerate() {
            if j != i {
                rest.push(k);
            }
        }
        rest.extend(dc.cubes().iter().copied());
        // c' = c ∩ supercube(complement(rest cofactor c))
        let g = complement(&rest.cofactor(&c));
        if g.is_empty() {
            // Entire cube covered elsewhere; keep (irredundant will drop it).
            continue;
        }
        let mut sc = g.cubes()[0];
        for k in &g.cubes()[1..] {
            sc = sc.supercube(k);
        }
        let reduced = c.intersect(&sc);
        if !reduced.is_empty() {
            out_cubes[i] = reduced;
        }
    }
    let mut out = Cover::new(n);
    out.extend(out_cubes);
    out
}

/// Runs the Espresso loop on an ON-set with optional don't-care set.
///
/// The result covers every ON-set minterm, avoids every OFF-set minterm, and
/// is usually far smaller than the input.
///
/// # Examples
///
/// ```
/// use eda_logic::{espresso, Cover};
/// // f = sum of minterms {0,1,2,3} over 3 vars = !x2 (after minimization)
/// let on = Cover::from_minterms(3, [0usize, 1, 2, 3]);
/// let out = espresso::minimize(&on, &Cover::new(3));
/// assert_eq!(out.cover.len(), 1);
/// assert_eq!(out.cover.cubes()[0].literal_count(), 1);
/// ```
pub fn minimize(on: &Cover, dc: &Cover) -> MinimizeOutcome {
    assert_eq!(on.num_vars(), dc.num_vars(), "ON/DC variable counts differ");
    let cubes_before = on.len();
    let literals_before = on.literal_cost();
    // OFF-set = complement(ON ∪ DC).
    let mut on_dc = on.clone();
    on_dc.extend(dc.cubes().iter().copied());
    let off = complement(&on_dc);

    let mut current = on.clone();
    current.remove_contained();
    let mut best_cost = (current.len(), current.literal_cost());
    let mut passes = 0u32;
    loop {
        passes += 1;
        let expanded = expand(&current, &off);
        let irr = irredundant(&expanded, dc);
        let reduced = reduce(&irr, dc);
        let re_expanded = expand(&reduced, &off);
        let candidate = irredundant(&re_expanded, dc);
        let cost = (candidate.len(), candidate.literal_cost());
        if cost < best_cost {
            best_cost = cost;
            current = candidate;
        } else {
            // Keep the better of candidate/current, stop.
            if cost <= best_cost {
                current = candidate;
            }
            break;
        }
        if passes > 10 {
            break;
        }
    }
    MinimizeOutcome {
        cubes_after: current.len(),
        literals_after: current.literal_cost(),
        cover: current,
        cubes_before,
        literals_before,
        passes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exhaustive_equal(a: &Cover, b: &Cover) -> bool {
        let n = a.num_vars();
        (0..(1usize << n)).all(|m| {
            let assignment: Vec<bool> = (0..n).map(|v| m >> v & 1 == 1).collect();
            a.eval(&assignment) == b.eval(&assignment)
        })
    }

    #[test]
    fn tautology_basics() {
        assert!(tautology(&Cover::tautology_cover(3)));
        assert!(!tautology(&Cover::new(3)));
        // x0 + !x0 is a tautology.
        let mut f = Cover::new(2);
        f.push(Cube::full(2).with_literal(0, true));
        f.push(Cube::full(2).with_literal(0, false));
        assert!(tautology(&f));
        // x0 + x1 is not.
        let mut g = Cover::new(2);
        g.push(Cube::full(2).with_literal(0, true));
        g.push(Cube::full(2).with_literal(1, true));
        assert!(!tautology(&g));
    }

    #[test]
    fn complement_is_exact() {
        for seed in 0..20u64 {
            let n = 4;
            // Pseudo-random minterm sets.
            let mut mts = Vec::new();
            let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            for m in 0..(1usize << n) {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if x >> 60 & 1 == 1 {
                    mts.push(m);
                }
            }
            let f = Cover::from_minterms(n, mts.iter().copied());
            let fc = complement(&f);
            for m in 0..(1usize << n) {
                let a: Vec<bool> = (0..n).map(|v| m >> v & 1 == 1).collect();
                assert_eq!(f.eval(&a), !fc.eval(&a), "seed {seed} minterm {m}");
            }
        }
    }

    #[test]
    fn minimize_collapses_quadrant() {
        // Minterms 0..3 over 3 vars are exactly !x2.
        let on = Cover::from_minterms(3, 0usize..4);
        let out = minimize(&on, &Cover::new(3));
        assert_eq!(out.cover.len(), 1);
        assert_eq!(out.cover.cubes()[0].literal(2), 0b10);
        assert!(out.literals_after < out.literals_before);
        assert!(exhaustive_equal(&on, &out.cover));
    }

    #[test]
    fn minimize_preserves_function_randomized() {
        for seed in 0..15u64 {
            let n = 5;
            let mut mts = Vec::new();
            let mut x = seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(7);
            for m in 0..(1usize << n) {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if x >> 61 & 0b11 != 0 {
                    mts.push(m);
                }
            }
            let on = Cover::from_minterms(n, mts.iter().copied());
            let out = minimize(&on, &Cover::new(n));
            assert!(exhaustive_equal(&on, &out.cover), "seed {seed}");
            assert!(out.cubes_after <= out.cubes_before);
        }
    }

    #[test]
    fn dont_cares_enable_bigger_cubes() {
        // ON = {3}, DC = {1, 2, 7}: x0&x1 can expand over DC minterms.
        let on = Cover::from_minterms(3, [3usize]);
        let dc = Cover::from_minterms(3, [1usize, 2, 7]);
        let with_dc = minimize(&on, &dc);
        let without = minimize(&on, &Cover::new(3));
        assert!(with_dc.cover.literal_cost() < without.cover.literal_cost());
        // Still must not cover OFF minterms {0, 4, 5, 6}.
        for m in [0usize, 4, 5, 6] {
            let a: Vec<bool> = (0..3).map(|v| m >> v & 1 == 1).collect();
            assert!(!with_dc.cover.eval(&a), "covered OFF minterm {m}");
        }
        // Must still cover the ON minterm.
        assert!(with_dc.cover.eval(&[true, true, false]));
    }

    #[test]
    fn xor_does_not_collapse() {
        // XOR of 3 vars has no 2-level reduction below 4 cubes.
        let on = Cover::from_minterms(3, [1usize, 2, 4, 7]);
        let out = minimize(&on, &Cover::new(3));
        assert_eq!(out.cover.len(), 4, "parity is cube-irreducible");
        assert!(exhaustive_equal(&on, &out.cover));
    }

    #[test]
    fn expand_respects_off_set() {
        let on = Cover::from_minterms(2, [3usize]);
        let off = Cover::from_minterms(2, [0usize]);
        let e = expand(&on, &off);
        // Can expand to x0 or x1 but not to the full cube.
        assert!(!e.cubes()[0].is_full());
        assert!(e.cubes()[0].literal_count() <= 1);
    }

    #[test]
    fn irredundant_drops_covered_cube() {
        let mut f = Cover::new(2);
        f.push(Cube::full(2).with_literal(0, true)); // x0
        f.push(Cube::full(2).with_literal(1, true)); // x1
        f.push(Cube::full(2).with_literal(0, true).with_literal(1, true)); // x0x1 (redundant)
        let out = irredundant(&f, &Cover::new(2));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn minimize_constant_one() {
        let on = Cover::from_minterms(2, 0usize..4);
        let out = minimize(&on, &Cover::new(2));
        assert_eq!(out.cover.len(), 1);
        assert!(out.cover.cubes()[0].is_full());
    }

    #[test]
    fn minimize_empty_is_empty() {
        let out = minimize(&Cover::new(3), &Cover::new(3));
        assert!(out.cover.is_empty());
    }
}
