//! Small truth tables (up to 6 variables) packed in a `u64`.
//!
//! Row `r`'s output sits in bit `r`; variable `i` of row `r` is bit `i` of
//! `r`. These are the function fingerprints used by cut-based technology
//! mapping and by the ISOP refactoring step.

/// A boolean function of up to 6 variables.
///
/// # Examples
///
/// ```
/// use eda_logic::TruthTable;
/// let a = TruthTable::var(3, 0);
/// let b = TruthTable::var(3, 1);
/// let f = a.and(&b).xor(&TruthTable::var(3, 2));
/// assert_eq!(f.num_vars(), 3);
/// assert!(f.eval(&[true, true, false]));
/// assert!(!f.eval(&[true, true, true]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TruthTable {
    bits: u64,
    num_vars: u8,
}

/// Masks of variable `i`'s positive cofactor rows, for 6-var tables.
const VAR_MASK: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

impl TruthTable {
    /// Maximum supported variable count.
    pub const MAX_VARS: usize = 6;

    /// Creates a table from raw bits.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 6`.
    pub fn from_bits(num_vars: usize, bits: u64) -> TruthTable {
        assert!(num_vars <= Self::MAX_VARS, "at most {} variables", Self::MAX_VARS);
        let mask = Self::row_mask(num_vars);
        TruthTable { bits: bits & mask, num_vars: num_vars as u8 }
    }

    fn row_mask(num_vars: usize) -> u64 {
        if num_vars == 6 {
            !0
        } else {
            (1u64 << (1usize << num_vars)) - 1
        }
    }

    /// The constant-0 function.
    pub fn zero(num_vars: usize) -> TruthTable {
        TruthTable::from_bits(num_vars, 0)
    }

    /// The constant-1 function.
    pub fn one(num_vars: usize) -> TruthTable {
        TruthTable::from_bits(num_vars, !0)
    }

    /// The projection onto variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_vars` or `num_vars > 6`.
    pub fn var(num_vars: usize, i: usize) -> TruthTable {
        assert!(i < num_vars, "variable {i} out of range for {num_vars} vars");
        TruthTable::from_bits(num_vars, VAR_MASK[i])
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// Raw bits (masked to the valid rows).
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Logical AND.
    pub fn and(&self, other: &TruthTable) -> TruthTable {
        self.binop(other, |a, b| a & b)
    }

    /// Logical OR.
    pub fn or(&self, other: &TruthTable) -> TruthTable {
        self.binop(other, |a, b| a | b)
    }

    /// Logical XOR.
    pub fn xor(&self, other: &TruthTable) -> TruthTable {
        self.binop(other, |a, b| a ^ b)
    }

    /// Logical NOT.
    pub fn not(&self) -> TruthTable {
        TruthTable::from_bits(self.num_vars(), !self.bits)
    }

    fn binop(&self, other: &TruthTable, f: impl Fn(u64, u64) -> u64) -> TruthTable {
        assert_eq!(self.num_vars, other.num_vars, "mixed variable counts");
        TruthTable::from_bits(self.num_vars(), f(self.bits, other.bits))
    }

    /// Evaluates on an assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != num_vars`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars(), "assignment length");
        let mut row = 0usize;
        for (i, &b) in assignment.iter().enumerate() {
            if b {
                row |= 1 << i;
            }
        }
        self.bits >> row & 1 == 1
    }

    /// Positive cofactor with respect to variable `i`.
    pub fn cofactor1(&self, i: usize) -> TruthTable {
        assert!(i < self.num_vars(), "variable out of range");
        let m = VAR_MASK[i];
        let hi = self.bits & m;
        let shift = 1u32 << i;
        TruthTable::from_bits(self.num_vars(), hi | (hi >> shift))
    }

    /// Negative cofactor with respect to variable `i`.
    pub fn cofactor0(&self, i: usize) -> TruthTable {
        assert!(i < self.num_vars(), "variable out of range");
        let m = !VAR_MASK[i];
        let lo = self.bits & m;
        let shift = 1u32 << i;
        TruthTable::from_bits(self.num_vars(), lo | (lo << shift))
    }

    /// Whether the function depends on variable `i`.
    pub fn depends_on(&self, i: usize) -> bool {
        self.cofactor0(i) != self.cofactor1(i)
    }

    /// The set of variables the function actually depends on.
    pub fn support(&self) -> Vec<usize> {
        (0..self.num_vars()).filter(|&i| self.depends_on(i)).collect()
    }

    /// Whether the function is constant (0 or 1).
    pub fn is_constant(&self) -> bool {
        self.bits == 0 || self.bits == Self::row_mask(self.num_vars())
    }

    /// Number of ON-set rows.
    pub fn count_ones(&self) -> u32 {
        self.bits.count_ones()
    }

    /// Reorders inputs: output variable `i` reads old variable `perm[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..num_vars`.
    pub fn permute(&self, perm: &[usize]) -> TruthTable {
        let n = self.num_vars();
        assert_eq!(perm.len(), n, "permutation length");
        let mut seen = vec![false; n];
        for &p in perm {
            assert!(p < n && !seen[p], "not a permutation");
            seen[p] = true;
        }
        let mut out = 0u64;
        for row in 0..(1usize << n) {
            let mut src = 0usize;
            for (i, &p) in perm.iter().enumerate() {
                if row >> i & 1 == 1 {
                    src |= 1 << p;
                }
            }
            if self.bits >> src & 1 == 1 {
                out |= 1 << row;
            }
        }
        TruthTable::from_bits(n, out)
    }

    /// Extends to `new_vars` variables (new variables are don't-cares).
    ///
    /// # Panics
    ///
    /// Panics if `new_vars` is smaller than the current count or above 6.
    pub fn extend(&self, new_vars: usize) -> TruthTable {
        let n = self.num_vars();
        assert!(new_vars >= n && new_vars <= Self::MAX_VARS, "bad extension");
        let mut bits = self.bits;
        let mut width = 1usize << n;
        for _ in n..new_vars {
            bits |= bits << width;
            width *= 2;
        }
        TruthTable::from_bits(new_vars, bits)
    }

    /// Returns true if the function is XOR-like: equal to the parity of some
    /// subset of its support variables, possibly complemented. These are the
    /// functions controlled-polarity devices implement natively.
    pub fn is_xor_like(&self) -> bool {
        let sup = self.support();
        if sup.is_empty() {
            return false;
        }
        let mut parity = TruthTable::zero(self.num_vars());
        for &v in &sup {
            parity = parity.xor(&TruthTable::var(self.num_vars(), v));
        }
        *self == parity || *self == parity.not()
    }
}

impl std::fmt::Display for TruthTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rows = 1usize << self.num_vars();
        write!(f, "{:0width$b}", self.bits & TruthTable::row_mask(self.num_vars()), width = rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_eval_matches_definition() {
        for n in 1..=6 {
            for i in 0..n {
                let t = TruthTable::var(n, i);
                for row in 0..(1usize << n) {
                    let assignment: Vec<bool> = (0..n).map(|k| row >> k & 1 == 1).collect();
                    assert_eq!(t.eval(&assignment), assignment[i]);
                }
            }
        }
    }

    #[test]
    fn cofactors_shannon_expand() {
        // f = x0 & x1 | x2 ; f = x2' ? (x0&x1) : 1... check via identity
        let n = 3;
        let f = TruthTable::var(n, 0).and(&TruthTable::var(n, 1)).or(&TruthTable::var(n, 2));
        for i in 0..n {
            let c0 = f.cofactor0(i);
            let c1 = f.cofactor1(i);
            let x = TruthTable::var(n, i);
            let rebuilt = x.and(&c1).or(&x.not().and(&c0));
            assert_eq!(rebuilt, f, "Shannon expansion on var {i}");
            assert!(!c0.depends_on(i));
            assert!(!c1.depends_on(i));
        }
    }

    #[test]
    fn support_detects_dependencies() {
        let n = 4;
        let f = TruthTable::var(n, 1).xor(&TruthTable::var(n, 3));
        assert_eq!(f.support(), vec![1, 3]);
        assert!(TruthTable::one(4).support().is_empty());
    }

    #[test]
    fn permute_relabels_variables() {
        let n = 3;
        // f(x0,x1,x2) = x0 & !x2
        let f = TruthTable::var(n, 0).and(&TruthTable::var(n, 2).not());
        // g reads old var perm[i] at position i: perm = [2,1,0] swaps 0 and 2.
        let g = f.permute(&[2, 1, 0]);
        for row in 0..8usize {
            let a: Vec<bool> = (0..3).map(|k| row >> k & 1 == 1).collect();
            let swapped = vec![a[2], a[1], a[0]];
            assert_eq!(g.eval(&a), f.eval(&swapped));
        }
    }

    #[test]
    fn extend_keeps_function() {
        let f = TruthTable::var(2, 1).xor(&TruthTable::var(2, 0));
        let g = f.extend(4);
        assert_eq!(g.num_vars(), 4);
        for row in 0..16usize {
            let a: Vec<bool> = (0..4).map(|k| row >> k & 1 == 1).collect();
            assert_eq!(g.eval(&a), a[0] ^ a[1]);
        }
        assert_eq!(g.support(), vec![0, 1]);
    }

    #[test]
    fn xor_like_detection() {
        let n = 3;
        let x0 = TruthTable::var(n, 0);
        let x1 = TruthTable::var(n, 1);
        let x2 = TruthTable::var(n, 2);
        assert!(x0.xor(&x1).xor(&x2).is_xor_like());
        assert!(x0.xor(&x1).not().is_xor_like());
        assert!(!x0.and(&x1).is_xor_like());
        assert!(!TruthTable::zero(3).is_xor_like());
        // Majority is not XOR-like.
        let maj = x0.and(&x1).or(&x1.and(&x2)).or(&x0.and(&x2));
        assert!(!maj.is_xor_like());
    }

    #[test]
    fn constants() {
        assert!(TruthTable::zero(4).is_constant());
        assert!(TruthTable::one(6).is_constant());
        assert!(!TruthTable::var(2, 0).is_constant());
        assert_eq!(TruthTable::one(2).count_ones(), 4);
    }

    #[test]
    fn six_var_edge_cases() {
        let f = TruthTable::var(6, 5);
        assert_eq!(f.bits(), VAR_MASK[5]);
        assert!(f.depends_on(5));
        assert!(!f.depends_on(0));
        let g = f.not();
        assert_eq!(g.cofactor1(5), TruthTable::zero(6));
    }

    #[test]
    #[should_panic(expected = "at most 6")]
    fn too_many_vars_panics() {
        let _ = TruthTable::zero(7);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn bad_permutation_panics() {
        let _ = TruthTable::var(3, 0).permute(&[0, 0, 1]);
    }
}
