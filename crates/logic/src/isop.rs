//! Irredundant sum-of-products extraction (Minato–Morreale ISOP) from small
//! truth tables.
//!
//! Used by AIG refactoring and technology mapping to resynthesize a cone's
//! function into a compact structure.

use crate::cube::{Cover, Cube};
use crate::tt::TruthTable;

/// Computes an irredundant SOP `g` with `lower ⊆ g ⊆ upper`.
///
/// For an exact cover of a function `f`, call with `lower = upper = f`.
///
/// # Panics
///
/// Panics if `lower ⊄ upper` or variable counts differ.
pub fn isop(lower: &TruthTable, upper: &TruthTable) -> Cover {
    assert_eq!(lower.num_vars(), upper.num_vars(), "variable counts differ");
    assert_eq!(lower.and(upper), *lower, "lower set must imply upper set");
    let n = lower.num_vars();
    let (cover, _tt) = isop_rec(lower, upper, n);
    cover
}

/// Recursive worker; also returns the truth table of the produced cover.
fn isop_rec(l: &TruthTable, u: &TruthTable, n: usize) -> (Cover, TruthTable) {
    if l.bits() == 0 {
        return (Cover::new(n), TruthTable::zero(n));
    }
    if *u == TruthTable::one(n) {
        let mut c = Cover::new(n);
        c.push(Cube::full(n));
        return (c, TruthTable::one(n));
    }
    // Split on the highest variable in the supports.
    let x = (0..n)
        .rev()
        .find(|&v| l.depends_on(v) || u.depends_on(v))
        .expect("non-constant bounds must depend on something");
    let l0 = l.cofactor0(x);
    let l1 = l.cofactor1(x);
    let u0 = u.cofactor0(x);
    let u1 = u.cofactor1(x);

    // Cubes needed only on the x=0 side / x=1 side.
    let (c0, g0) = isop_rec(&l0.and(&u1.not()), &u0, n);
    let (c1, g1) = isop_rec(&l1.and(&u0.not()), &u1, n);
    // Remainder that must be covered on both sides.
    let lnew = l0.and(&g0.not()).or(&l1.and(&g1.not()));
    let (c2, g2) = isop_rec(&lnew, &u0.and(&u1), n);

    let mut cover = Cover::new(n);
    for c in c0.cubes() {
        cover.push(c.with_literal(x, false));
    }
    for c in c1.cubes() {
        cover.push(c.with_literal(x, true));
    }
    cover.extend(c2.cubes().iter().copied());

    let xv = TruthTable::var(n, x);
    let tt = xv.not().and(&g0).or(&xv.and(&g1)).or(&g2);
    (cover, tt)
}

/// Structural cost of realizing a cover as an AIG: 2-input ANDs for the
/// product terms plus 2-input ORs for the sum.
pub fn sop_aig_cost(cover: &Cover) -> u32 {
    if cover.is_empty() {
        return 0;
    }
    let ands: u32 = cover.cubes().iter().map(|c| c.literal_count().saturating_sub(1)).sum();
    ands + (cover.len() as u32 - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover_tt(c: &Cover, n: usize) -> TruthTable {
        let mut bits = 0u64;
        for m in 0..(1usize << n) {
            let a: Vec<bool> = (0..n).map(|v| m >> v & 1 == 1).collect();
            if c.eval(&a) {
                bits |= 1 << m;
            }
        }
        TruthTable::from_bits(n, bits)
    }

    #[test]
    fn exact_isop_matches_function() {
        for n in 1..=4usize {
            for raw in [0x6996u64, 0x8000, 0x1, 0xFFFE, 0xCAFE, 0x8421, 0x7FFF] {
                let f = TruthTable::from_bits(n, raw);
                if f.bits() == 0 {
                    continue;
                }
                let c = isop(&f, &f);
                assert_eq!(cover_tt(&c, n), f, "n={n} raw={raw:x}");
            }
        }
    }

    #[test]
    fn isop_of_constants() {
        let f = TruthTable::zero(3);
        assert!(isop(&f, &f).is_empty());
        let t = TruthTable::one(3);
        let c = isop(&t, &t);
        assert_eq!(c.len(), 1);
        assert!(c.cubes()[0].is_full());
    }

    #[test]
    fn isop_uses_dont_cares() {
        // lower = minterm 3 (x0&x1), upper adds rows 1 and 2 as DC:
        // can produce a single-literal cube.
        let n = 2;
        let lower = TruthTable::from_bits(n, 0b1000);
        let upper = TruthTable::from_bits(n, 0b1110);
        let c = isop(&lower, &upper);
        assert_eq!(c.len(), 1);
        assert!(c.cubes()[0].literal_count() <= 1);
        // Result within bounds.
        let g = cover_tt(&c, n);
        assert_eq!(g.and(&lower), lower);
        assert_eq!(g.and(&upper), g);
    }

    #[test]
    fn xor_isop_has_expected_shape() {
        let n = 2;
        let f = TruthTable::var(n, 0).xor(&TruthTable::var(n, 1));
        let c = isop(&f, &f);
        assert_eq!(c.len(), 2);
        assert_eq!(sop_aig_cost(&c), 3); // 2 ANDs + 1 OR
        assert_eq!(cover_tt(&c, n), f);
    }

    #[test]
    fn majority_isop() {
        let n = 3;
        let a = TruthTable::var(n, 0);
        let b = TruthTable::var(n, 1);
        let ce = TruthTable::var(n, 2);
        let f = a.and(&b).or(&b.and(&ce)).or(&a.and(&ce));
        let c = isop(&f, &f);
        assert_eq!(c.len(), 3, "majority needs 3 cubes");
        assert_eq!(cover_tt(&c, n), f);
    }

    #[test]
    #[should_panic(expected = "lower set must imply upper")]
    fn invalid_bounds_panic() {
        let l = TruthTable::one(2);
        let u = TruthTable::zero(2);
        let _ = isop(&l, &u);
    }
}
