//! And-Inverter Graphs: the optimization intermediate form of modern logic
//! synthesis, with structural hashing, balancing, and cut-based refactoring.
//!
//! De Micheli's introduction argues that competitive design "can no longer be
//! thought in terms of NANDs, NORs and AOIs" — the AIG is the neutral
//! representation from which both conventional CMOS mapping and
//! functionality-enhanced-device mapping proceed.

use crate::isop::{isop, sop_aig_cost};
use crate::tt::TruthTable;
use eda_netlist::{CellFunction, NetDriver, Netlist};
use std::collections::HashMap;

/// A literal: an AIG node with an optional complement flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Constant false.
    pub const FALSE: Lit = Lit(0);
    /// Constant true.
    pub const TRUE: Lit = Lit(1);

    fn new(node: u32, complement: bool) -> Lit {
        Lit(node << 1 | complement as u32)
    }

    /// The node index this literal refers to.
    pub fn node(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether the literal is complemented.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

/// One AIG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AigNode {
    /// The constant node (index 0).
    Const,
    /// Primary input number `usize`.
    Pi(usize),
    /// Two-input AND of two literals.
    And(Lit, Lit),
}

/// Errors converting netlists to AIGs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AigError {
    /// The netlist contains a cell synthesis cannot absorb (clock gates,
    /// isolation cells, scan flops — these are inserted *after* synthesis).
    UnsupportedCell(String),
    /// A flip-flop clock pin is driven by logic rather than a primary input
    /// (a chain of plain buffers — a clock spine — is seen through).
    ClockNotPrimaryInput(String),
    /// The netlist failed validation.
    Invalid(String),
}

impl std::fmt::Display for AigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AigError::UnsupportedCell(c) => write!(f, "cell `{c}` is not synthesizable"),
            AigError::ClockNotPrimaryInput(n) => {
                write!(f, "flop `{n}` clock is not a primary input")
            }
            AigError::Invalid(m) => write!(f, "invalid netlist: {m}"),
        }
    }
}

impl std::error::Error for AigError {}

/// Where the sequential elements sat in the source netlist, so the mapper can
/// re-insert them around the purely combinational AIG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqBoundary {
    /// Count of genuine primary inputs (AIG PIs beyond this are flop outputs).
    pub real_pis: usize,
    /// Count of genuine primary outputs (AIG POs beyond this are flop D pins).
    pub real_pos: usize,
    /// One record per flop, in order.
    pub flops: Vec<FlopBoundary>,
}

/// One flip-flop at the sequential boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlopBoundary {
    /// Original instance name.
    pub name: String,
    /// AIG primary-input index of the clock net.
    pub clock_pi: usize,
    /// Hierarchy block of the original flop, if assigned. The mapper labels
    /// the flop and its realized input cone with this block, so hierarchy
    /// survives synthesis for the placer's benefit.
    pub block: Option<String>,
}

/// An and-inverter graph with structural hashing.
///
/// # Examples
///
/// ```
/// use eda_logic::Aig;
/// let mut g = Aig::new();
/// let a = g.add_pi("a");
/// let b = g.add_pi("b");
/// let f = g.xor(a, b);
/// g.add_po("y", f);
/// assert_eq!(g.num_ands(), 3); // XOR costs three ANDs
/// assert_eq!(g.simulate64(&[0b0110, 0b0011]), vec![0b0101]);
/// ```
#[derive(Debug, Clone)]
pub struct Aig {
    nodes: Vec<AigNode>,
    strash: HashMap<(Lit, Lit), u32>,
    pi_names: Vec<String>,
    pos: Vec<(String, Lit)>,
}

impl Default for Aig {
    fn default() -> Self {
        Aig::new()
    }
}

impl Aig {
    /// Creates an empty graph (just the constant node).
    pub fn new() -> Aig {
        Aig { nodes: vec![AigNode::Const], strash: HashMap::new(), pi_names: Vec::new(), pos: Vec::new() }
    }

    /// Adds a primary input and returns its literal.
    pub fn add_pi(&mut self, name: impl Into<String>) -> Lit {
        let id = self.nodes.len() as u32;
        self.nodes.push(AigNode::Pi(self.pi_names.len()));
        self.pi_names.push(name.into());
        Lit::new(id, false)
    }

    /// Registers a primary output.
    pub fn add_po(&mut self, name: impl Into<String>, lit: Lit) {
        self.pos.push((name.into(), lit));
    }

    /// AND with constant propagation, identity rules and structural hashing.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        if a == Lit::FALSE || b == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE || a == b {
            return a;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&id) = self.strash.get(&key) {
            return Lit::new(id, false);
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(AigNode::And(key.0, key.1));
        self.strash.insert(key, id);
        Lit::new(id, false)
    }

    /// OR via De Morgan.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        let n = self.and(!a, !b);
        !n
    }

    /// XOR (three ANDs).
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let p = self.and(a, !b);
        let q = self.and(!a, b);
        self.or(p, q)
    }

    /// Multiplexer: `s ? t : e`.
    pub fn mux(&mut self, s: Lit, t: Lit, e: Lit) -> Lit {
        let p = self.and(s, t);
        let q = self.and(!s, e);
        self.or(p, q)
    }

    /// N-ary AND.
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        lits.iter().fold(Lit::TRUE, |acc, &l| self.and(acc, l))
    }

    /// N-ary OR.
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        lits.iter().fold(Lit::FALSE, |acc, &l| self.or(acc, l))
    }

    /// Number of AND nodes.
    pub fn num_ands(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, AigNode::And(..))).count()
    }

    /// Number of primary inputs.
    pub fn num_pis(&self) -> usize {
        self.pi_names.len()
    }

    /// Primary input names.
    pub fn pi_names(&self) -> &[String] {
        &self.pi_names
    }

    /// Primary outputs as `(name, literal)` pairs.
    pub fn pos(&self) -> &[(String, Lit)] {
        &self.pos
    }

    /// Per-node logic level (PIs and the constant are level 0).
    pub fn levels(&self) -> Vec<u32> {
        let mut lv = vec![0u32; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if let AigNode::And(a, b) = n {
                lv[i] = 1 + lv[a.node()].max(lv[b.node()]);
            }
        }
        lv
    }

    /// Depth: the maximum level over the primary outputs.
    pub fn depth(&self) -> u32 {
        let lv = self.levels();
        self.pos.iter().map(|(_, l)| lv[l.node()]).max().unwrap_or(0)
    }

    /// Bit-parallel simulation: 64 patterns at once.
    ///
    /// # Panics
    ///
    /// Panics if `pi_values.len()` differs from the PI count.
    pub fn simulate64(&self, pi_values: &[u64]) -> Vec<u64> {
        assert_eq!(pi_values.len(), self.pi_names.len(), "PI count mismatch");
        let mut val = vec![0u64; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            val[i] = match *n {
                AigNode::Const => 0,
                AigNode::Pi(k) => pi_values[k],
                AigNode::And(a, b) => {
                    let va = val[a.node()] ^ if a.is_complemented() { !0 } else { 0 };
                    let vb = val[b.node()] ^ if b.is_complemented() { !0 } else { 0 };
                    va & vb
                }
            };
        }
        self.pos
            .iter()
            .map(|&(_, l)| val[l.node()] ^ if l.is_complemented() { !0 } else { 0 })
            .collect()
    }

    /// Fanout reference counts (from POs and internal edges).
    fn refcounts(&self) -> Vec<u32> {
        let mut refs = vec![0u32; self.nodes.len()];
        for n in &self.nodes {
            if let AigNode::And(a, b) = n {
                refs[a.node()] += 1;
                refs[b.node()] += 1;
            }
        }
        for (_, l) in &self.pos {
            refs[l.node()] += 1;
        }
        refs
    }

    /// Converts a netlist to an AIG, splitting at the sequential boundary.
    ///
    /// The AIG's PIs are the netlist's primary inputs followed by one pseudo
    /// input per flop (its `Q`); the POs are the netlist's primary outputs
    /// followed by one pseudo output per flop (its `D`).
    ///
    /// # Errors
    ///
    /// Fails on non-synthesizable cells ([`AigError::UnsupportedCell`]), on
    /// flop clocks that do not resolve to a primary input through at most a
    /// chain of plain buffers, or on invalid netlists.
    pub fn from_netlist(netlist: &Netlist) -> Result<(Aig, SeqBoundary), AigError> {
        netlist.validate().map_err(|e| AigError::Invalid(e.to_string()))?;
        let lib = netlist.library();
        let mut aig = Aig::new();
        let mut net_lit: HashMap<usize, Lit> = HashMap::new();
        for &pi in netlist.primary_inputs() {
            let lit = aig.add_pi(netlist.net(pi).name());
            net_lit.insert(pi.index(), lit);
        }
        let real_pis = aig.num_pis();
        // Pseudo-PIs for flop outputs.
        let flops = netlist.flops();
        let mut flop_records = Vec::with_capacity(flops.len());
        for &f in &flops {
            let inst = netlist.instance(f);
            let func = lib.cell(inst.cell()).function;
            if func != CellFunction::Dff {
                return Err(AigError::UnsupportedCell(format!(
                    "{} ({:?}): only plain DFFs are synthesizable",
                    inst.name(),
                    func
                )));
            }
            let q = aig.add_pi(format!("{}__q", inst.name()));
            net_lit.insert(inst.output().index(), q);
            // The clock must resolve to a primary input net, possibly
            // through a chain of plain buffers: scale-tier fabrics arrive
            // with a buffered clock spine (root → row → tile) to keep net
            // fanout bounded, and a buffer preserves the clock edge, so
            // synthesis can see straight through it. The spine cells
            // themselves become dead combinational logic and are swept; CTS
            // rebuilds a balanced tree from the placed flops later anyway.
            // Gated or logic-derived clocks still fail, as before.
            let mut ck_net = inst.inputs()[1];
            let clock_pi = loop {
                match netlist.net(ck_net).driver() {
                    Some(NetDriver::PrimaryInput(k)) => break k,
                    Some(NetDriver::Instance(d))
                        if lib.cell(netlist.instance(d).cell()).function
                            == CellFunction::Buf =>
                    {
                        ck_net = netlist.instance(d).inputs()[0];
                    }
                    _ => {
                        return Err(AigError::ClockNotPrimaryInput(inst.name().to_string()))
                    }
                }
            };
            let block = inst
                .block()
                .map(|b| netlist.block_names()[b as usize].clone());
            flop_records.push(FlopBoundary { name: inst.name().to_string(), clock_pi, block });
        }
        // Combinational instances in topo order.
        let order = netlist.topo_order().map_err(|e| AigError::Invalid(e.to_string()))?;
        for id in order {
            let inst = netlist.instance(id);
            let func = lib.cell(inst.cell()).function;
            if func.is_sequential() {
                continue;
            }
            let ins: Vec<Lit> = inst
                .inputs()
                .iter()
                .map(|n| net_lit.get(&n.index()).copied().expect("topo order guarantees inputs"))
                .collect();
            let lit = match func {
                CellFunction::Const0 => Lit::FALSE,
                CellFunction::Const1 => Lit::TRUE,
                CellFunction::Buf => ins[0],
                CellFunction::Inv => !ins[0],
                CellFunction::And(_) => aig.and_many(&ins),
                CellFunction::Nand(_) => !aig.and_many(&ins),
                CellFunction::Or(_) => aig.or_many(&ins),
                CellFunction::Nor(_) => !aig.or_many(&ins),
                CellFunction::Xor2 => aig.xor(ins[0], ins[1]),
                CellFunction::Xnor2 => !aig.xor(ins[0], ins[1]),
                CellFunction::Aoi21 => {
                    let p = aig.and(ins[0], ins[1]);
                    !aig.or(p, ins[2])
                }
                CellFunction::Oai21 => {
                    let p = aig.or(ins[0], ins[1]);
                    !aig.and(p, ins[2])
                }
                CellFunction::Mux2 => aig.mux(ins[2], ins[1], ins[0]),
                CellFunction::Maj3 => {
                    let ab = aig.and(ins[0], ins[1]);
                    let bc = aig.and(ins[1], ins[2]);
                    let ac = aig.and(ins[0], ins[2]);
                    let t = aig.or(ab, bc);
                    aig.or(t, ac)
                }
                other => return Err(AigError::UnsupportedCell(format!("{:?}", other))),
            };
            net_lit.insert(inst.output().index(), lit);
        }
        for (name, net) in netlist.primary_outputs() {
            let lit = net_lit
                .get(&net.index())
                .copied()
                .ok_or_else(|| AigError::Invalid(format!("output `{name}` undriven")))?;
            aig.add_po(name.clone(), lit);
        }
        let real_pos = aig.pos.len();
        for &f in &flops {
            let inst = netlist.instance(f);
            let d = inst.inputs()[0];
            let lit = net_lit
                .get(&d.index())
                .copied()
                .ok_or_else(|| AigError::Invalid(format!("flop `{}` D undriven", inst.name())))?;
            aig.add_po(format!("{}__d", inst.name()), lit);
        }
        Ok((aig, SeqBoundary { real_pis, real_pos, flops: flop_records }))
    }

    /// Depth-oriented balancing: re-associates maximal AND trees so the
    /// deepest input feeds the shallowest position.
    pub fn balance(&self) -> Aig {
        let mut out = Aig::new();
        let mut map: Vec<Lit> = vec![Lit::FALSE; self.nodes.len()];
        // Levels of nodes in `out`, kept in lockstep with out.nodes.
        let mut out_levels: Vec<u32> = vec![0];
        let level_of = |out: &Aig, lv: &mut Vec<u32>, l: Lit| -> u32 {
            while lv.len() < out.nodes.len() {
                let i = lv.len();
                let v = match out.nodes[i] {
                    AigNode::Const | AigNode::Pi(_) => 0,
                    AigNode::And(a, b) => 1 + lv[a.node()].max(lv[b.node()]),
                };
                lv.push(v);
            }
            lv[l.node()]
        };
        for (i, n) in self.nodes.iter().enumerate() {
            match *n {
                AigNode::Const => map[0] = Lit::FALSE,
                AigNode::Pi(k) => map[i] = out.add_pi(self.pi_names[k].clone()),
                AigNode::And(..) => {
                    // Gather conjunction leaves of the maximal AND tree rooted
                    // here (descending through non-complemented AND edges;
                    // strash re-shares any duplicated sub-structure).
                    let mut leaves: Vec<Lit> = Vec::new();
                    let mut stack = vec![Lit::new(i as u32, false)];
                    while let Some(l) = stack.pop() {
                        let expandable = leaves.len() + stack.len() < 64;
                        match (l.is_complemented() || !expandable, self.nodes[l.node()]) {
                            (false, AigNode::And(a, b)) => {
                                stack.push(a);
                                stack.push(b);
                            }
                            _ => leaves.push(l),
                        }
                    }
                    // Map leaves into the new graph, sorted descending by
                    // level so the shallowest sit at the end.
                    let mut mapped: Vec<(u32, Lit)> = leaves
                        .iter()
                        .map(|&l| {
                            let m = map[l.node()];
                            let ml = if l.is_complemented() { !m } else { m };
                            (level_of(&out, &mut out_levels, ml), ml)
                        })
                        .collect();
                    mapped.sort_by_key(|&(lv, _)| std::cmp::Reverse(lv));
                    while mapped.len() > 1 {
                        let (_, a) = mapped.pop().expect("len > 1");
                        let (_, b) = mapped.pop().expect("len > 1");
                        let c = out.and(a, b);
                        let lv = level_of(&out, &mut out_levels, c);
                        let pos = mapped.partition_point(|&(l, _)| l > lv);
                        mapped.insert(pos, (lv, c));
                    }
                    map[i] = mapped.pop().map(|(_, l)| l).unwrap_or(Lit::TRUE);
                }
            }
        }
        for (name, l) in &self.pos {
            let m = map[l.node()];
            out.add_po(name.clone(), if l.is_complemented() { !m } else { m });
        }
        out
    }

    /// Area-oriented refactoring: covers the graph with 4-feasible cuts,
    /// resynthesizes each chosen cone from its truth table via ISOP, and
    /// rebuilds. Usually reduces AND count substantially on redundant logic.
    pub fn rewrite(&self) -> Aig {
        const K: usize = 4;
        const MAX_CUTS: usize = 8;

        #[derive(Clone)]
        struct Cut {
            leaves: Vec<u32>,
            tt: TruthTable,
        }

        let n_nodes = self.nodes.len();
        let refs = self.refcounts();
        let mut cuts: Vec<Vec<Cut>> = vec![Vec::new(); n_nodes];
        // Choice per AND node: None = direct AND of children, Some(k) = cut k.
        let mut choice: Vec<Option<usize>> = vec![None; n_nodes];
        let mut flow: Vec<f64> = vec![0.0; n_nodes];

        for i in 0..n_nodes {
            match self.nodes[i] {
                AigNode::Const => {
                    cuts[i].push(Cut { leaves: vec![i as u32], tt: TruthTable::var(K, 0) });
                    flow[i] = 0.0;
                }
                AigNode::Pi(_) => {
                    cuts[i].push(Cut { leaves: vec![i as u32], tt: TruthTable::var(K, 0) });
                    flow[i] = 0.0;
                }
                AigNode::And(a, b) => {
                    let mut merged: Vec<Cut> = Vec::new();
                    for ca in &cuts[a.node()] {
                        for cb in &cuts[b.node()] {
                            let mut leaves: Vec<u32> = ca.leaves.clone();
                            for &l in &cb.leaves {
                                if !leaves.contains(&l) {
                                    leaves.push(l);
                                }
                            }
                            if leaves.len() > K {
                                continue;
                            }
                            leaves.sort_unstable();
                            if merged.iter().any(|c| c.leaves == leaves) {
                                continue;
                            }
                            // Recompute child functions on the merged leaves.
                            let ta = Self::cut_tt_on(&ca.leaves, &ca.tt, &leaves);
                            let tb = Self::cut_tt_on(&cb.leaves, &cb.tt, &leaves);
                            let fa = if a.is_complemented() { ta.not() } else { ta };
                            let fb = if b.is_complemented() { tb.not() } else { tb };
                            merged.push(Cut { leaves, tt: fa.and(&fb) });
                        }
                    }
                    merged.sort_by_key(|c| c.leaves.len());
                    merged.truncate(MAX_CUTS - 1);
                    // Cost of direct construction.
                    let direct = 1.0 + flow[a.node()] + flow[b.node()];
                    let mut best = direct;
                    let mut best_choice = None;
                    for (k, c) in merged.iter().enumerate() {
                        if c.leaves.len() < 2 {
                            continue;
                        }
                        let cover = isop(&c.tt, &c.tt);
                        let cone_cost = sop_aig_cost(&cover) as f64;
                        let leaf_flow: f64 = c.leaves.iter().map(|&l| flow[l as usize]).sum();
                        let cost = cone_cost + leaf_flow;
                        if cost < best {
                            best = cost;
                            best_choice = Some(k);
                        }
                    }
                    choice[i] = best_choice;
                    flow[i] = best / (refs[i].max(1) as f64);
                    // Trivial cut for parents.
                    merged.insert(0, Cut { leaves: vec![i as u32], tt: TruthTable::var(K, 0) });
                    merged.truncate(MAX_CUTS);
                    cuts[i] = merged;
                }
            }
        }

        // Required set from POs.
        let mut required = vec![false; n_nodes];
        let mut stack: Vec<usize> = self.pos.iter().map(|(_, l)| l.node()).collect();
        while let Some(n) = stack.pop() {
            if required[n] {
                continue;
            }
            required[n] = true;
            match self.nodes[n] {
                AigNode::Const | AigNode::Pi(_) => {}
                AigNode::And(a, b) => match choice[n] {
                    None => {
                        stack.push(a.node());
                        stack.push(b.node());
                    }
                    Some(k) => {
                        // +1: account for the trivial cut inserted at front.
                        for &l in &cuts[n][k + 1].leaves {
                            stack.push(l as usize);
                        }
                    }
                },
            }
        }

        // Rebuild.
        let mut out = Aig::new();
        let mut map: Vec<Lit> = vec![Lit::FALSE; n_nodes];
        for i in 0..n_nodes {
            match self.nodes[i] {
                AigNode::Const => map[i] = Lit::FALSE,
                AigNode::Pi(k) => map[i] = out.add_pi(self.pi_names[k].clone()),
                AigNode::And(a, b) => {
                    if !required[i] {
                        continue;
                    }
                    map[i] = match choice[i] {
                        None => {
                            let ma = if a.is_complemented() { !map[a.node()] } else { map[a.node()] };
                            let mb = if b.is_complemented() { !map[b.node()] } else { map[b.node()] };
                            out.and(ma, mb)
                        }
                        Some(k) => {
                            let cut = &cuts[i][k + 1];
                            let cover = isop(&cut.tt, &cut.tt);
                            let leaf_lits: Vec<Lit> =
                                cut.leaves.iter().map(|&l| map[l as usize]).collect();
                            let mut terms: Vec<Lit> = Vec::with_capacity(cover.len());
                            for cube in cover.cubes() {
                                let mut lits = Vec::new();
                                for (v, &leaf) in leaf_lits.iter().enumerate() {
                                    match cube.literal(v) {
                                        0b01 => lits.push(leaf),
                                        0b10 => lits.push(!leaf),
                                        _ => {}
                                    }
                                }
                                terms.push(out.and_many(&lits));
                            }
                            out.or_many(&terms)
                        }
                    };
                }
            }
        }
        for (name, l) in &self.pos {
            let m = map[l.node()];
            out.add_po(name.clone(), if l.is_complemented() { !m } else { m });
        }
        out
    }

    /// Re-expresses a cut function computed over `old_leaves` on the
    /// positions of `new_leaves` (a superset).
    fn cut_tt_on(old_leaves: &[u32], tt: &TruthTable, new_leaves: &[u32]) -> TruthTable {
        const K: usize = 4;
        // Build permutation: variable i of the old tt is old_leaves[i], which
        // sits at position p in new_leaves.
        let mut out = TruthTable::zero(K);
        for row in 0..(1usize << K) {
            // Assignment of new leaves -> assignment of old vars.
            let mut old_row = 0usize;
            for (i, &ol) in old_leaves.iter().enumerate() {
                let p = new_leaves.iter().position(|&nl| nl == ol).expect("superset");
                if row >> p & 1 == 1 {
                    old_row |= 1 << i;
                }
            }
            if tt.bits() >> old_row & 1 == 1 {
                out = TruthTable::from_bits(K, out.bits() | (1u64 << row));
            }
        }
        out
    }

    /// Stable 64-bit content digest of the exact graph structure (nodes,
    /// strash-canonical AND operands, PI names, PO bindings). Two AIGs with
    /// equal digests are structurally identical, so a memoized pass result
    /// keyed on its input digest replays bit-identically.
    pub fn digest(&self) -> u64 {
        eda_netlist::memo::fnv1a(self.to_store_text().bytes())
    }

    /// Serializes the graph to the line-oriented store text used by the
    /// sub-stage memo (`aig v1` header, `n` node rows, `p`/`o` boundary
    /// rows). [`Aig::from_store_text`] restores the identical structure.
    pub fn to_store_text(&self) -> String {
        let mut out = String::with_capacity(16 * self.nodes.len() + 64);
        out.push_str(&format!(
            "aig v1 {} {} {}\n",
            self.nodes.len(),
            self.pi_names.len(),
            self.pos.len()
        ));
        for n in &self.nodes {
            match *n {
                AigNode::Const => out.push_str("n c\n"),
                AigNode::Pi(k) => out.push_str(&format!("n i {k}\n")),
                AigNode::And(a, b) => out.push_str(&format!("n a {} {}\n", a.0, b.0)),
            }
        }
        for name in &self.pi_names {
            out.push_str(&format!("p {}\n", store_escape(name)));
        }
        for (name, l) in &self.pos {
            out.push_str(&format!("o {} {}\n", store_escape(name), l.0));
        }
        // Explicit terminator so a truncated tail can never parse as a
        // complete (shorter) graph.
        out.push_str("end\n");
        out
    }

    /// Parses the store text written by [`Aig::to_store_text`], rebuilding
    /// the structural-hash table. Returns `None` on any malformed input —
    /// memo callers treat that as a miss and recompute.
    pub fn from_store_text(text: &str) -> Option<Aig> {
        let mut lines = text.lines();
        let header = lines.next()?;
        let mut hf = header.split(' ');
        if hf.next()? != "aig" || hf.next()? != "v1" {
            return None;
        }
        let n_nodes: usize = hf.next()?.parse().ok()?;
        let n_pis: usize = hf.next()?.parse().ok()?;
        let n_pos: usize = hf.next()?.parse().ok()?;
        let mut g = Aig { nodes: Vec::with_capacity(n_nodes), strash: HashMap::new(), pi_names: Vec::with_capacity(n_pis), pos: Vec::with_capacity(n_pos) };
        for _ in 0..n_nodes {
            let line = lines.next()?;
            let mut f = line.split(' ');
            if f.next()? != "n" {
                return None;
            }
            let node = match f.next()? {
                "c" => AigNode::Const,
                "i" => AigNode::Pi(f.next()?.parse().ok()?),
                "a" => {
                    let a = Lit(f.next()?.parse().ok()?);
                    let b = Lit(f.next()?.parse().ok()?);
                    if a.node() >= g.nodes.len() || b.node() >= g.nodes.len() || a > b {
                        return None;
                    }
                    g.strash.insert((a, b), g.nodes.len() as u32);
                    AigNode::And(a, b)
                }
                _ => return None,
            };
            g.nodes.push(node);
        }
        for _ in 0..n_pis {
            let line = lines.next()?;
            let name = line.strip_prefix("p ")?;
            g.pi_names.push(store_unescape(name)?);
        }
        for _ in 0..n_pos {
            let line = lines.next()?;
            let mut f = line.strip_prefix("o ")?.rsplitn(2, ' ');
            let lit = Lit(f.next()?.parse().ok()?);
            let name = store_unescape(f.next()?)?;
            if lit.node() >= g.nodes.len() {
                return None;
            }
            g.pos.push((name, lit));
        }
        if lines.next()? != "end"
            || lines.next().is_some()
            || g.nodes.first() != Some(&AigNode::Const)
        {
            return None;
        }
        Some(g)
    }

    /// Per-node iterator access for mappers: `(index, is_and, children)`.
    pub(crate) fn raw_nodes(&self) -> Vec<RawNode> {
        self.nodes
            .iter()
            .map(|n| match *n {
                AigNode::Const => RawNode::Const,
                AigNode::Pi(k) => RawNode::Pi(k),
                AigNode::And(a, b) => RawNode::And(a, b),
            })
            .collect()
    }
}

/// Read-only node view for sibling modules (the technology mapper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RawNode {
    Const,
    Pi(usize),
    And(Lit, Lit),
}

/// %-escapes spaces, `%` and control bytes so names stay single-token on a
/// space-split store line.
fn store_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        if b == b' ' || b == b'%' || b < 0x20 || b == 0x7f {
            out.push_str(&format!("%{b:02x}"));
        } else {
            out.push(b as char);
        }
    }
    out
}

/// Inverse of [`store_escape`]; `None` on malformed escapes or non-UTF-8.
fn store_unescape(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = s.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_netlist::generate;

    #[test]
    fn strash_shares_structure() {
        let mut g = Aig::new();
        let a = g.add_pi("a");
        let b = g.add_pi("b");
        let x = g.and(a, b);
        let y = g.and(b, a);
        assert_eq!(x, y, "commutative inputs hash to one node");
        assert_eq!(g.num_ands(), 1);
    }

    #[test]
    fn constant_rules() {
        let mut g = Aig::new();
        let a = g.add_pi("a");
        assert_eq!(g.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(g.and(a, Lit::TRUE), a);
        assert_eq!(g.and(a, !a), Lit::FALSE);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.num_ands(), 0);
    }

    #[test]
    fn xor_and_mux_semantics() {
        let mut g = Aig::new();
        let a = g.add_pi("a");
        let b = g.add_pi("b");
        let s = g.add_pi("s");
        let x = g.xor(a, b);
        let m = g.mux(s, a, b);
        g.add_po("x", x);
        g.add_po("m", m);
        // a=0b0101, b=0b0011, s=0b1110 ... check truth lanes.
        let outs = g.simulate64(&[0b0101, 0b0011, 0b1110]);
        assert_eq!(outs[0] & 0xF, 0b0110);
        // mux: s?a:b per lane: s=0 -> b(1), s=1 -> a(0,1,0 lanes 1..3)
        assert_eq!(outs[1] & 0xF, 0b0101 & 0b1110 | 0b0011 & !0b1110 & 0xF);
    }

    #[test]
    fn from_netlist_equivalence() {
        let n = generate::ripple_carry_adder(6).unwrap();
        let (aig, bnd) = Aig::from_netlist(&n).unwrap();
        assert_eq!(bnd.flops.len(), 0);
        assert_eq!(aig.num_pis(), n.primary_inputs().len());
        let pats: Vec<u64> =
            (0..aig.num_pis()).map(|i| 0x5DEE_CE66_D715_EAD7u64.wrapping_mul(i as u64 + 3)).collect();
        let aig_out = aig.simulate64(&pats);
        let (nl_out, _) = n.simulate64(&pats, &[]);
        assert_eq!(aig_out, nl_out);
    }

    #[test]
    fn from_netlist_sequential_boundary() {
        let n = generate::switch_fabric(3, 2).unwrap();
        let (aig, bnd) = Aig::from_netlist(&n).unwrap();
        assert_eq!(bnd.flops.len(), 6);
        assert_eq!(aig.num_pis(), n.primary_inputs().len() + 6);
        assert_eq!(aig.pos().len(), n.primary_outputs().len() + 6);
        assert_eq!(bnd.real_pis, n.primary_inputs().len());
        // Clock is PI 0 in the fabric generator.
        assert!(bnd.flops.iter().all(|f| f.clock_pi == 0));
    }

    #[test]
    fn buffered_clock_spine_resolves_to_the_root_primary_input() {
        // The scale-tier mesh clocks every flop off a root → row → tile
        // buffer spine; each flop's clock must trace through the chain to
        // the `clk` primary input (PI 0 in the generator).
        let n = generate::mesh_fabric(2, 2, 30, 3, 5).unwrap();
        let (_, bnd) = Aig::from_netlist(&n).unwrap();
        assert!(!bnd.flops.is_empty(), "mesh tiles pipeline every 12th gate");
        assert!(bnd.flops.iter().all(|f| f.clock_pi == 0));
    }

    #[test]
    fn balance_preserves_function_and_reduces_depth() {
        // A long unbalanced AND chain.
        let mut g = Aig::new();
        let pis: Vec<Lit> = (0..8).map(|i| g.add_pi(format!("x{i}"))).collect();
        let mut acc = pis[0];
        for &p in &pis[1..] {
            acc = g.and(acc, p);
        }
        g.add_po("y", acc);
        assert_eq!(g.depth(), 7);
        let b = g.balance();
        assert_eq!(b.depth(), 3, "balanced 8-input AND tree has depth 3");
        let pats: Vec<u64> = (0..8).map(|i| 0x0123_4567_89AB_CDEFu64.rotate_left(i * 8)).collect();
        assert_eq!(g.simulate64(&pats), b.simulate64(&pats));
    }

    #[test]
    fn rewrite_preserves_function() {
        for seed in [1u64, 5, 9] {
            let n = generate::random_logic(generate::RandomLogicConfig {
                gates: 250,
                flop_fraction: 0.0,
                seed,
                ..Default::default()
            })
            .unwrap();
            let (aig, _) = Aig::from_netlist(&n).unwrap();
            let rw = aig.rewrite();
            let pats: Vec<u64> = (0..aig.num_pis())
                .map(|i| 0x9E37_79B9_97F4_A7C1u64.wrapping_mul(i as u64 + seed))
                .collect();
            assert_eq!(aig.simulate64(&pats), rw.simulate64(&pats), "seed {seed}");
            assert!(rw.num_ands() <= aig.num_ands(), "rewrite must not grow: seed {seed}");
        }
    }

    #[test]
    fn rewrite_shrinks_redundant_logic() {
        // Build (a&b)|(a&!b) = a the hard way; rewrite should see through it.
        let mut g = Aig::new();
        let a = g.add_pi("a");
        let b = g.add_pi("b");
        let p = g.and(a, b);
        let q = g.and(a, !b);
        let y = g.or(p, q);
        g.add_po("y", y);
        let rw = g.rewrite();
        assert_eq!(rw.num_ands(), 0, "function collapses to a wire");
        let pats = vec![0xF0F0, 0xCCCC];
        assert_eq!(rw.simulate64(&pats), g.simulate64(&pats));
    }

    #[test]
    fn unsupported_cells_rejected() {
        use eda_netlist::{CellFunction, Netlist};
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let e = n.add_input("e");
        let y = n.add_gate_fn("iso", CellFunction::Isolation, &[a, e]).unwrap();
        n.add_output("y", y);
        assert!(matches!(Aig::from_netlist(&n), Err(AigError::UnsupportedCell(_))));
    }

    #[test]
    fn store_text_roundtrips_structure_and_digest() {
        let n = generate::switch_fabric(3, 2).unwrap();
        let (aig, _) = Aig::from_netlist(&n).unwrap();
        let opt = aig.rewrite().balance();
        let text = opt.to_store_text();
        let back = Aig::from_store_text(&text).expect("well-formed text parses");
        assert_eq!(back.to_store_text(), text, "serialization is a fixed point");
        assert_eq!(back.digest(), opt.digest());
        assert_eq!(back.num_ands(), opt.num_ands());
        assert_eq!(back.pi_names(), opt.pi_names());
        assert_eq!(back.pos(), opt.pos());
        let pats: Vec<u64> = (0..opt.num_pis()).map(|i| 0xA5A5_5A5A_1234_9876u64.rotate_left(i as u32)).collect();
        assert_eq!(back.simulate64(&pats), opt.simulate64(&pats));
        // The restored strash keeps sharing live: AND-ing an existing pair
        // must not allocate a new node.
        let mut b2 = back.clone();
        let nodes_before = b2.nodes.len();
        if let Some((&(a, b), _)) = b2.strash.clone().iter().next() {
            b2.and(a, b);
            assert_eq!(b2.nodes.len(), nodes_before, "strash survives the roundtrip");
        }
    }

    #[test]
    fn store_text_escapes_hostile_names() {
        let mut g = Aig::new();
        let a = g.add_pi("a b%c\nd");
        g.add_po("y z%", !a);
        let back = Aig::from_store_text(&g.to_store_text()).unwrap();
        assert_eq!(back.pi_names(), g.pi_names());
        assert_eq!(back.pos(), g.pos());
        assert_eq!(back.digest(), g.digest());
    }

    #[test]
    fn malformed_store_text_is_rejected() {
        let n = generate::ripple_carry_adder(3).unwrap();
        let (aig, _) = Aig::from_netlist(&n).unwrap();
        let text = aig.to_store_text();
        assert!(Aig::from_store_text("").is_none());
        assert!(Aig::from_store_text("aig v2 1 0 0\nn c\n").is_none());
        // Truncation anywhere must fail, never panic.
        for cut in [text.len() / 4, text.len() / 2, text.len() - 2] {
            assert!(Aig::from_store_text(&text[..cut]).is_none(), "cut at {cut}");
        }
        // Trailing garbage is rejected too.
        assert!(Aig::from_store_text(&format!("{text}junk\n")).is_none());
    }

    #[test]
    fn not_operator_involutes() {
        let mut g = Aig::new();
        let a = g.add_pi("a");
        assert_eq!(!!a, a);
        assert_ne!(!a, a);
    }
}
