//! Struct-of-arrays netlist storage for the scale tier.
//!
//! [`Netlist`] is an array-of-structs graph: every instance and net owns its
//! own `String` name and its own `Vec` of pins, and a `HashMap` indexes nets
//! by name. That is the right shape for transformation passes but the wrong
//! one for holding 10⁵–10⁶ instances: per-object allocations, 24-byte `Vec`
//! headers on two-element pin lists, and a name hash map that dwarfs the
//! graph itself.
//!
//! [`SoaNetlist`] stores the same information as flat parallel `u32` arrays:
//! all names interned into one byte arena with offset tables, pin lists in
//! CSR form (one offsets array + one data array), drivers packed into a
//! single `u32` code, and no name index at all (it is rebuilt on conversion
//! back). Conversion is exact in both directions — [`SoaNetlist::to_netlist`]
//! of [`SoaNetlist::from_netlist`] reproduces every field, including sink
//! order — and [`SoaNetlist::heap_bytes`] / [`dense_heap_bytes`] measure both
//! representations so the scale bench can record the dense baseline bar the
//! SoA form must stay under.
//!
//! The text codec (`to_text` / `from_text`) mirrors the v1 netlist codec's
//! posture: line-oriented, percent-escaped, typed [`SoaCodecError`] on any
//! malformed input — truncation or corruption must never panic.

use crate::cell::{CellId, Library};
use crate::codec::{escape, unescape};
use crate::netlist::{InstId, Instance, Net, NetDriver, NetId, Netlist};
use std::collections::HashMap;
use std::sync::Arc;

/// Packed driver code: 0 = undriven, odd = primary input, even = instance.
const DRIVER_NONE: u32 = 0;

fn encode_driver(d: Option<NetDriver>) -> u32 {
    match d {
        None => DRIVER_NONE,
        Some(NetDriver::PrimaryInput(i)) => 2 * (i as u32) + 1,
        Some(NetDriver::Instance(id)) => 2 * (id.0) + 2,
    }
}

fn decode_driver(v: u32) -> Option<NetDriver> {
    match v {
        DRIVER_NONE => None,
        v if v % 2 == 1 => Some(NetDriver::PrimaryInput(((v - 1) / 2) as usize)),
        v => Some(NetDriver::Instance(InstId(v / 2 - 1))),
    }
}

/// Sentinel for "no hierarchy block".
const NO_BLOCK: u32 = u32::MAX;

/// A [`Netlist`] flattened into struct-of-arrays form: `u32` indices, CSR
/// pin lists, and one interned name arena. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct SoaNetlist {
    name: String,
    library: Arc<Library>,
    block_names: Vec<String>,
    /// All net, instance and output-port names, concatenated (in that order).
    names: Vec<u8>,
    /// End offset of each net name in `names`; name `i` starts at `off[i-1]`
    /// (or 0). Instance and output names chain on in the same arena.
    net_name_end: Vec<u32>,
    inst_name_end: Vec<u32>,
    out_name_end: Vec<u32>,
    // Nets.
    net_driver: Vec<u32>,
    net_sink_off: Vec<u32>,
    net_sink_inst: Vec<u32>,
    net_sink_pin: Vec<u32>,
    // Instances.
    inst_cell: Vec<u32>,
    inst_output: Vec<u32>,
    inst_block: Vec<u32>,
    inst_input_off: Vec<u32>,
    inst_input_net: Vec<u32>,
    // Ports.
    pi_net: Vec<u32>,
    po_net: Vec<u32>,
}

/// Errors from [`SoaNetlist::from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SoaCodecError {
    /// A line did not parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The library name is not one of the built-ins.
    UnknownLibrary(String),
    /// Cross-array indices are inconsistent (offsets not monotone, ids out
    /// of range, non-UTF-8 name slices).
    Inconsistent(String),
}

impl std::fmt::Display for SoaCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SoaCodecError::Parse { line, reason } => {
                write!(f, "soa codec: line {line}: {reason}")
            }
            SoaCodecError::UnknownLibrary(n) => write!(f, "soa codec: unknown library `{n}`"),
            SoaCodecError::Inconsistent(r) => write!(f, "soa codec: inconsistent data: {r}"),
        }
    }
}

impl std::error::Error for SoaCodecError {}

fn vec_bytes<T>(v: &[T]) -> usize {
    std::mem::size_of_val(v)
}

impl SoaNetlist {
    /// Flattens an AoS netlist. Exact: [`SoaNetlist::to_netlist`] inverts it.
    pub fn from_netlist(n: &Netlist) -> SoaNetlist {
        let mut names = Vec::new();
        let mut net_name_end = Vec::with_capacity(n.nets.len());
        let mut net_driver = Vec::with_capacity(n.nets.len());
        let mut net_sink_off = Vec::with_capacity(n.nets.len() + 1);
        let total_sinks: usize = n.nets.iter().map(|net| net.sinks.len()).sum();
        let mut net_sink_inst = Vec::with_capacity(total_sinks);
        let mut net_sink_pin = Vec::with_capacity(total_sinks);
        net_sink_off.push(0);
        for net in &n.nets {
            names.extend_from_slice(net.name.as_bytes());
            net_name_end.push(names.len() as u32);
            net_driver.push(encode_driver(net.driver));
            for &(inst, pin) in &net.sinks {
                net_sink_inst.push(inst.0);
                net_sink_pin.push(pin as u32);
            }
            net_sink_off.push(net_sink_inst.len() as u32);
        }
        let mut inst_name_end = Vec::with_capacity(n.instances.len());
        let mut inst_cell = Vec::with_capacity(n.instances.len());
        let mut inst_output = Vec::with_capacity(n.instances.len());
        let mut inst_block = Vec::with_capacity(n.instances.len());
        let mut inst_input_off = Vec::with_capacity(n.instances.len() + 1);
        let total_inputs: usize = n.instances.iter().map(|i| i.inputs.len()).sum();
        let mut inst_input_net = Vec::with_capacity(total_inputs);
        inst_input_off.push(0);
        for inst in &n.instances {
            names.extend_from_slice(inst.name.as_bytes());
            inst_name_end.push(names.len() as u32);
            inst_cell.push(inst.cell.0);
            inst_output.push(inst.output.0);
            inst_block.push(inst.block.unwrap_or(NO_BLOCK));
            for &i in &inst.inputs {
                inst_input_net.push(i.0);
            }
            inst_input_off.push(inst_input_net.len() as u32);
        }
        let mut out_name_end = Vec::with_capacity(n.outputs.len());
        let mut po_net = Vec::with_capacity(n.outputs.len());
        for (name, net) in &n.outputs {
            names.extend_from_slice(name.as_bytes());
            out_name_end.push(names.len() as u32);
            po_net.push(net.0);
        }
        SoaNetlist {
            name: n.name.clone(),
            library: n.library.clone(),
            block_names: n.block_names.clone(),
            names,
            net_name_end,
            inst_name_end,
            out_name_end,
            net_driver,
            net_sink_off,
            net_sink_inst,
            net_sink_pin,
            inst_cell,
            inst_output,
            inst_block,
            inst_input_off,
            inst_input_net,
            pi_net: n.inputs.iter().map(|i| i.0).collect(),
            po_net,
        }
    }

    /// Expands back to the AoS graph, rebuilding the name index.
    ///
    /// Infallible: every `SoaNetlist` is validated at construction
    /// ([`SoaNetlist::from_netlist`] by construction, [`SoaNetlist::from_text`]
    /// by explicit checks), so the lookups here cannot go out of bounds.
    pub fn to_netlist(&self) -> Netlist {
        let name_at = |start: u32, end: u32| -> String {
            String::from_utf8_lossy(&self.names[start as usize..end as usize]).into_owned()
        };
        let mut nets = Vec::with_capacity(self.net_driver.len());
        let mut net_by_name = HashMap::with_capacity(self.net_driver.len());
        let mut prev = 0u32;
        for (i, &end) in self.net_name_end.iter().enumerate() {
            let nm = name_at(prev, end);
            prev = end;
            let s = self.net_sink_off[i] as usize..self.net_sink_off[i + 1] as usize;
            let sinks = self.net_sink_inst[s.clone()]
                .iter()
                .zip(&self.net_sink_pin[s])
                .map(|(&inst, &pin)| (InstId(inst), pin as usize))
                .collect();
            net_by_name.insert(nm.clone(), NetId(i as u32));
            nets.push(Net { name: nm, driver: decode_driver(self.net_driver[i]), sinks });
        }
        let mut instances = Vec::with_capacity(self.inst_cell.len());
        for (i, &end) in self.inst_name_end.iter().enumerate() {
            let nm = name_at(prev, end);
            prev = end;
            let r = self.inst_input_off[i] as usize..self.inst_input_off[i + 1] as usize;
            instances.push(Instance {
                name: nm,
                cell: CellId(self.inst_cell[i]),
                inputs: self.inst_input_net[r].iter().map(|&n| NetId(n)).collect(),
                output: NetId(self.inst_output[i]),
                block: (self.inst_block[i] != NO_BLOCK).then_some(self.inst_block[i]),
            });
        }
        let mut outputs = Vec::with_capacity(self.po_net.len());
        for (i, &end) in self.out_name_end.iter().enumerate() {
            let nm = name_at(prev, end);
            prev = end;
            outputs.push((nm, NetId(self.po_net[i])));
        }
        Netlist {
            name: self.name.clone(),
            library: self.library.clone(),
            instances,
            nets,
            inputs: self.pi_net.iter().map(|&n| NetId(n)).collect(),
            outputs,
            block_names: self.block_names.clone(),
            net_by_name,
        }
    }

    /// Number of instances.
    pub fn num_instances(&self) -> usize {
        self.inst_cell.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.net_driver.len()
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Heap bytes this representation holds (arrays at element size ×
    /// length, which dominate; allocator slack is not modeled, matching the
    /// [`dense_heap_bytes`] convention so the two are comparable).
    pub fn heap_bytes(&self) -> usize {
        self.name.len()
            + self.block_names.iter().map(|b| b.len() + std::mem::size_of::<String>()).sum::<usize>()
            + self.names.capacity()
            + vec_bytes(&self.net_name_end)
            + vec_bytes(&self.inst_name_end)
            + vec_bytes(&self.out_name_end)
            + vec_bytes(&self.net_driver)
            + vec_bytes(&self.net_sink_off)
            + vec_bytes(&self.net_sink_inst)
            + vec_bytes(&self.net_sink_pin)
            + vec_bytes(&self.inst_cell)
            + vec_bytes(&self.inst_output)
            + vec_bytes(&self.inst_block)
            + vec_bytes(&self.inst_input_off)
            + vec_bytes(&self.inst_input_net)
            + vec_bytes(&self.pi_net)
            + vec_bytes(&self.po_net)
    }

    /// Serializes to the `eda-soa v1` text form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("eda-soa v1\n");
        out.push_str(&format!("design {}\n", escape(&self.name)));
        out.push_str(&format!("library {}\n", escape(self.library.name())));
        out.push_str(&format!("blocks {}\n", self.block_names.len()));
        for b in &self.block_names {
            out.push_str(&format!("b {}\n", escape(b)));
        }
        // The arena is raw bytes; escape via the same percent scheme after a
        // lossy-free byte→char widening (names are UTF-8 by construction).
        out.push_str(&format!(
            "arena {}\n",
            escape(&String::from_utf8_lossy(&self.names))
        ));
        let section = |out: &mut String, tag: &str, v: &[u32]| {
            out.push_str(&format!("{tag} {}", v.len()));
            for x in v {
                out.push_str(&format!(" {x}"));
            }
            out.push('\n');
        };
        section(&mut out, "net_name_end", &self.net_name_end);
        section(&mut out, "inst_name_end", &self.inst_name_end);
        section(&mut out, "out_name_end", &self.out_name_end);
        section(&mut out, "net_driver", &self.net_driver);
        section(&mut out, "net_sink_off", &self.net_sink_off);
        section(&mut out, "net_sink_inst", &self.net_sink_inst);
        section(&mut out, "net_sink_pin", &self.net_sink_pin);
        section(&mut out, "inst_cell", &self.inst_cell);
        section(&mut out, "inst_output", &self.inst_output);
        section(&mut out, "inst_block", &self.inst_block);
        section(&mut out, "inst_input_off", &self.inst_input_off);
        section(&mut out, "inst_input_net", &self.inst_input_net);
        section(&mut out, "pi_net", &self.pi_net);
        section(&mut out, "po_net", &self.po_net);
        out
    }

    /// Deserializes the `eda-soa v1` text form.
    ///
    /// # Errors
    ///
    /// Any malformed, truncated or internally-inconsistent input returns a
    /// typed [`SoaCodecError`]; this function never panics on hostile bytes,
    /// and a successfully parsed value satisfies every invariant
    /// [`SoaNetlist::to_netlist`] relies on.
    pub fn from_text(text: &str) -> Result<SoaNetlist, SoaCodecError> {
        let mut num = 0usize;
        let mut lines = text.lines();
        let mut next = |what: &str| -> Result<&str, SoaCodecError> {
            num += 1;
            lines.next().ok_or(SoaCodecError::Parse {
                line: num,
                reason: format!("unexpected end of input, wanted {what}"),
            })
        };
        let perr = |line: usize, reason: String| SoaCodecError::Parse { line, reason };

        let header = next("header")?;
        if header != "eda-soa v1" {
            return Err(perr(1, format!("bad header {header:?}")));
        }
        let field = |line: &str, ln: usize, tag: &str| -> Result<String, SoaCodecError> {
            let rest = line
                .strip_prefix(tag)
                .and_then(|r| r.strip_prefix(' '))
                .ok_or_else(|| perr(ln, format!("expected `{tag} ...`, got {line:?}")))?;
            unescape(rest).map_err(|e| perr(ln, e))
        };
        let name = field(next("design")?, 2, "design")?;
        let lib_name = field(next("library")?, 3, "library")?;
        let library = match lib_name.as_str() {
            "generic" => Library::generic(),
            "nand_inv_2006" => Library::nand_inv_2006(),
            "controlled_polarity" => Library::controlled_polarity(),
            other => return Err(SoaCodecError::UnknownLibrary(other.to_string())),
        };
        let blocks_line = next("blocks")?;
        let n_blocks: usize = blocks_line
            .strip_prefix("blocks ")
            .and_then(|r| r.parse().ok())
            .ok_or_else(|| perr(4, format!("expected `blocks <count>`, got {blocks_line:?}")))?;
        let mut block_names = Vec::with_capacity(n_blocks.min(1 << 16));
        for i in 0..n_blocks {
            block_names.push(field(next("block name")?, 5 + i, "b")?);
        }
        let arena_ln = 5 + n_blocks;
        let names = field(next("arena")?, arena_ln, "arena")?.into_bytes();

        let mut section_ln = arena_ln;
        let mut section = |tag: &str| -> Result<Vec<u32>, SoaCodecError> {
            section_ln += 1;
            let ln = section_ln;
            let line = next(tag)?;
            let mut toks = line.split(' ');
            let got = toks.next().unwrap_or("");
            if got != tag {
                return Err(perr(ln, format!("expected section `{tag}`, got {got:?}")));
            }
            let count: usize = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| perr(ln, format!("bad count in section `{tag}`")))?;
            let mut v = Vec::with_capacity(count.min(1 << 20));
            for k in 0..count {
                let t = toks
                    .next()
                    .ok_or_else(|| perr(ln, format!("section `{tag}` truncated at {k}/{count}")))?;
                v.push(
                    t.parse()
                        .map_err(|_| perr(ln, format!("bad value {t:?} in section `{tag}`")))?,
                );
            }
            if toks.next().is_some() {
                return Err(perr(ln, format!("trailing tokens in section `{tag}`")));
            }
            Ok(v)
        };
        let soa = SoaNetlist {
            name,
            library,
            block_names,
            names,
            net_name_end: section("net_name_end")?,
            inst_name_end: section("inst_name_end")?,
            out_name_end: section("out_name_end")?,
            net_driver: section("net_driver")?,
            net_sink_off: section("net_sink_off")?,
            net_sink_inst: section("net_sink_inst")?,
            net_sink_pin: section("net_sink_pin")?,
            inst_cell: section("inst_cell")?,
            inst_output: section("inst_output")?,
            inst_block: section("inst_block")?,
            inst_input_off: section("inst_input_off")?,
            inst_input_net: section("inst_input_net")?,
            pi_net: section("pi_net")?,
            po_net: section("po_net")?,
        };
        soa.validate().map_err(SoaCodecError::Inconsistent)?;
        Ok(soa)
    }

    /// Cross-array consistency: offsets monotone and bounded, every id in
    /// range, name slices on UTF-8 boundaries. `Ok` means
    /// [`SoaNetlist::to_netlist`] cannot panic.
    fn validate(&self) -> Result<(), String> {
        let nets = self.net_driver.len();
        let insts = self.inst_cell.len();
        let arena = self.names.len() as u32;
        if self.net_name_end.len() != nets {
            return Err("net name/driver count mismatch".into());
        }
        if self.inst_name_end.len() != insts
            || self.inst_output.len() != insts
            || self.inst_block.len() != insts
        {
            return Err("instance array length mismatch".into());
        }
        if self.out_name_end.len() != self.po_net.len() {
            return Err("output name/net count mismatch".into());
        }
        let ends = self
            .net_name_end
            .iter()
            .chain(&self.inst_name_end)
            .chain(&self.out_name_end);
        let mut prev = 0u32;
        for &e in ends {
            if e < prev || e > arena {
                return Err("name offsets not monotone within arena".into());
            }
            if std::str::from_utf8(&self.names[prev as usize..e as usize]).is_err() {
                return Err("name slice is not UTF-8".into());
            }
            prev = e;
        }
        let csr = |off: &[u32], data_len: usize, items: usize, what: &str| -> Result<(), String> {
            if off.len() != items + 1 {
                return Err(format!("{what} offsets length mismatch"));
            }
            if off.first() != Some(&0) || *off.last().unwrap_or(&0) as usize != data_len {
                return Err(format!("{what} offsets do not span the data"));
            }
            if off.windows(2).any(|w| w[0] > w[1]) {
                return Err(format!("{what} offsets not monotone"));
            }
            Ok(())
        };
        if self.net_sink_inst.len() != self.net_sink_pin.len() {
            return Err("sink inst/pin length mismatch".into());
        }
        csr(&self.net_sink_off, self.net_sink_inst.len(), nets, "sink")?;
        csr(&self.inst_input_off, self.inst_input_net.len(), insts, "input")?;
        let net_ok = |v: &u32| (*v as usize) < nets;
        let inst_ok = |v: &u32| (*v as usize) < insts;
        if !self.net_sink_inst.iter().all(inst_ok) {
            return Err("sink instance out of range".into());
        }
        if !self.inst_input_net.iter().all(net_ok)
            || !self.inst_output.iter().all(net_ok)
            || !self.pi_net.iter().all(net_ok)
            || !self.po_net.iter().all(net_ok)
        {
            return Err("net id out of range".into());
        }
        if !self.inst_cell.iter().all(|&c| (c as usize) < self.library.len()) {
            return Err("cell id out of range".into());
        }
        for &d in &self.net_driver {
            if let Some(NetDriver::Instance(i)) = decode_driver(d) {
                if i.index() >= insts {
                    return Err("driver instance out of range".into());
                }
            }
        }
        Ok(())
    }
}

/// Measured heap bytes of the AoS [`Netlist`] representation — the dense
/// baseline bar the scale bench records against [`SoaNetlist::heap_bytes`].
///
/// Counts the instance/net tables at element size plus each object's owned
/// heap (name bytes, pin-list capacity) and the name index's table plus key
/// strings. Allocator slack is not modeled, so this is a lower bound on the
/// true footprint.
pub fn dense_heap_bytes(n: &Netlist) -> usize {
    let inst_bytes: usize = n
        .instances()
        .map(|(_, i)| {
            std::mem::size_of::<Instance>()
                + i.name().len()
                + std::mem::size_of_val(i.inputs())
        })
        .sum();
    let net_bytes: usize = n
        .nets()
        .map(|(_, net)| {
            std::mem::size_of::<Net>()
                + net.name().len()
                + std::mem::size_of_val(net.sinks())
        })
        .sum();
    // Name index: one (String, NetId) slot per net plus the key bytes (the
    // map duplicates every net name).
    let index_bytes: usize = n
        .nets()
        .map(|(_, net)| std::mem::size_of::<(String, NetId)>() + net.name().len())
        .sum();
    inst_bytes
        + net_bytes
        + index_bytes
        + std::mem::size_of_val(n.primary_inputs())
        + n.primary_outputs()
            .iter()
            .map(|(nm, _)| std::mem::size_of::<(String, NetId)>() + nm.len())
            .sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn roundtrip_through_soa_is_exact() {
        for design in [
            generate::switch_fabric(3, 3).unwrap(),
            generate::mesh_fabric(2, 2, 30, 4, 7).unwrap(),
            generate::hierarchical_design(3, 40, 5).unwrap(),
        ] {
            let soa = SoaNetlist::from_netlist(&design);
            let back = soa.to_netlist();
            assert_eq!(design.name, back.name);
            assert_eq!(design.instances, back.instances);
            assert_eq!(design.nets, back.nets);
            assert_eq!(design.inputs, back.inputs);
            assert_eq!(design.outputs, back.outputs);
            assert_eq!(design.block_names, back.block_names);
            assert_eq!(design.net_by_name, back.net_by_name);
        }
    }

    #[test]
    fn text_roundtrip_is_a_fixed_point() {
        let design = generate::mesh_fabric(2, 3, 25, 3, 9).unwrap();
        let soa = SoaNetlist::from_netlist(&design);
        let text = soa.to_text();
        let back = SoaNetlist::from_text(&text).unwrap();
        assert_eq!(soa, back);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn soa_is_leaner_than_dense() {
        let design = generate::mesh_fabric(3, 3, 80, 4, 1).unwrap();
        let soa = SoaNetlist::from_netlist(&design);
        let dense = dense_heap_bytes(&design);
        let lean = soa.heap_bytes();
        assert!(
            lean * 2 < dense,
            "SoA ({lean} B) should be well under half of dense ({dense} B)"
        );
    }

    #[test]
    fn truncation_and_corruption_are_typed_errors() {
        let design = generate::switch_fabric(3, 2).unwrap();
        let text = SoaNetlist::from_netlist(&design).to_text();
        for cut in [1, text.len() / 4, text.len() / 2] {
            assert!(SoaNetlist::from_text(&text[..cut]).is_err(), "cut at {cut}");
        }
        // Truncation inside the final line may still parse (it only shortens
        // the last number); what it must never do is panic.
        let _ = SoaNetlist::from_text(&text[..text.len() - 2]);
        let corrupt = text.replace("net_driver", "net_magics");
        assert!(SoaNetlist::from_text(&corrupt).is_err());
        // An in-range index swapped out of range must be caught by validate.
        let hostile = text.replace("inst_output", "inst_outpu9");
        assert!(SoaNetlist::from_text(&hostile).is_err());
    }

    #[test]
    fn special_names_survive_the_arena() {
        let mut n = Netlist::new("weird names");
        let a = n.add_input("in put %1");
        let g = n.add_gate_fn("u \t odd", crate::cell::CellFunction::Inv, &[a]).unwrap();
        n.add_output("out\nnl", g);
        let soa = SoaNetlist::from_netlist(&n);
        let back = SoaNetlist::from_text(&soa.to_text()).unwrap().to_netlist();
        assert_eq!(n.nets, back.nets);
        assert_eq!(n.outputs, back.outputs);
    }
}
