//! Sub-stage memoization hook: the storage-agnostic interface engine crates
//! expose so a persistent store can cache results *below* stage granularity.
//!
//! The flow layer's stage cache memoizes whole stage executions; the
//! sub-stage hooks let individual kernels inside a stage — an AIG rewrite
//! pass in synthesis, the routing of a decomposed connection list — replay
//! from a prior run even when the stage-level key misses (for example after
//! a config edit that leaves the kernel's own input untouched). Engine
//! crates (`eda-logic`, `eda-route`) take an optional `&dyn SubstageMemo`
//! and look up `(kind, key)` pairs; the flow layer implements the trait over
//! its embedded store.
//!
//! Contract: a payload stored under `(kind, key)` must be a pure function of
//! the key's preimage, and a `load` hit must replay bit-identically to the
//! recompute it stands in for. `load` returning `None` means miss, evicted,
//! or unreadable — the caller always recomputes; a memo failure must never
//! fail the kernel.

/// A key-value memo for kernel-level (sub-stage) results. Implementations
/// must tolerate concurrent use from one thread at a time per kernel; the
/// engine crates only call it from the orchestrating thread, never from
/// parallel workers.
pub trait SubstageMemo {
    /// Returns the payload stored under `(kind, key)`, or `None` on a miss
    /// (including evicted or unreadable entries — the caller recomputes).
    fn load(&self, kind: &str, key: u64) -> Option<String>;

    /// Stores `payload` under `(kind, key)`. Failures are absorbed by the
    /// implementation; storing never fails the kernel.
    fn store(&self, kind: &str, key: u64, payload: &str);
}

/// FNV-1a over `bytes`: the shared 64-bit content hash every sub-stage key
/// derives from (same constants as the flow layer's content addresses).
pub fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::collections::HashMap;

    struct MapMemo(RefCell<HashMap<(String, u64), String>>);

    impl SubstageMemo for MapMemo {
        fn load(&self, kind: &str, key: u64) -> Option<String> {
            self.0.borrow().get(&(kind.to_string(), key)).cloned()
        }
        fn store(&self, kind: &str, key: u64, payload: &str) {
            self.0.borrow_mut().insert((kind.to_string(), key), payload.to_string());
        }
    }

    #[test]
    fn memo_roundtrips_and_misses_cleanly() {
        let memo = MapMemo(RefCell::new(HashMap::new()));
        assert_eq!(memo.load("aig", 7), None);
        memo.store("aig", 7, "payload");
        assert_eq!(memo.load("aig", 7).as_deref(), Some("payload"));
        assert_eq!(memo.load("route", 7), None, "kinds are separate namespaces");
    }

    #[test]
    fn fnv_is_the_reference_vector() {
        // FNV-1a("a") from the published test vectors.
        assert_eq!(fnv1a("a".bytes()), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a("ab".bytes()), fnv1a("ba".bytes()));
    }
}
