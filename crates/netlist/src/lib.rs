//! Gate-level netlist substrate for the `eda` workspace.
//!
//! Provides the shared vocabulary every other subsystem speaks:
//!
//! * [`cell`] — logic functions, characterized cells, and the three standard
//!   [`Library`] flavours the panel's comparisons need;
//! * [`netlist`] — the flat netlist graph with validation, topological
//!   ordering and bit-parallel simulation;
//! * [`generate`] — seeded synthetic design generators (adders, multipliers,
//!   parity trees, switch fabrics, hierarchical SoCs, random logic, and the
//!   scale-tier mesh fabrics);
//! * [`soa`] — struct-of-arrays storage with `u32` indices and an interned
//!   name arena for holding 10⁵–10⁶-instance designs memory-leanly;
//! * [`memo`] — the storage-agnostic [`SubstageMemo`] hook engine crates use
//!   to replay kernel-level results from a persistent store;
//! * [`stats`] — structural statistics;
//! * [`verilog`] — a structural-Verilog writer/parser for interchange.
//!
//! # Examples
//!
//! ```
//! use eda_netlist::{generate, NetlistStats};
//!
//! # fn main() -> Result<(), eda_netlist::NetlistError> {
//! let fabric = generate::switch_fabric(4, 8)?;
//! fabric.validate()?;
//! let stats = NetlistStats::of(&fabric);
//! assert!(stats.flops > 0);
//! # Ok(())
//! # }
//! ```

pub mod cell;
pub mod codec;
pub mod generate;
pub mod liberty;
pub mod memo;
pub mod netlist;
pub mod soa;
pub mod stats;
pub mod verilog;

pub use cell::{CellDef, CellFunction, CellId, Library};
pub use memo::SubstageMemo;
pub use codec::CodecError;
pub use netlist::{InstId, Instance, Net, NetDriver, NetId, Netlist, NetlistError};
pub use soa::{dense_heap_bytes, SoaCodecError, SoaNetlist};
pub use liberty::{parse_clf, parse_liberty, write_clf, write_liberty, ParseLibError};
pub use stats::NetlistStats;
pub use verilog::{parse_verilog, write_verilog, ParseVerilogError};
