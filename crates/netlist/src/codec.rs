//! Exact, line-oriented text serialization of a [`Netlist`] for flow
//! checkpoints.
//!
//! The format is designed for *bit-identical* round trips, not for human
//! interchange (that is [`verilog`](crate::verilog)'s job): every vector is
//! written in storage order, floating-point values never appear (cells are
//! referenced by name against the library), and names are percent-escaped so
//! arbitrary identifiers survive. `from_text(to_text(n))` reconstructs `n`
//! field-for-field, including sink ordering — which transformation passes
//! rely on — and hierarchy labels.
//!
//! Only the three built-in libraries (`generic`, `nand_inv_2006`,
//! `controlled_polarity`) can be resolved at load time; a netlist bound to a
//! custom library is rejected with [`CodecError::UnknownLibrary`].

use crate::cell::Library;
use crate::netlist::{InstId, Instance, Net, NetDriver, NetId, Netlist};
use std::collections::HashMap;

/// Errors from [`from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// A line did not parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The library name is not one of the built-ins.
    UnknownLibrary(String),
    /// A cell name was not found in the library.
    UnknownCell(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Parse { line, reason } => write!(f, "netlist codec: line {line}: {reason}"),
            CodecError::UnknownLibrary(n) => write!(f, "netlist codec: unknown library `{n}`"),
            CodecError::UnknownCell(n) => write!(f, "netlist codec: unknown cell `{n}`"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Percent-escapes a name so it contains no whitespace and no `%`.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'%' | b' ' | b'\n' | b'\r' | b'\t' => {
                out.push('%');
                out.push_str(&format!("{b:02x}"));
            }
            _ => out.push(b as char),
        }
    }
    out
}

/// Inverse of [`escape`].
pub fn unescape(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| format!("truncated escape in {s:?}"))?;
            let hex = std::str::from_utf8(hex).map_err(|_| format!("bad escape in {s:?}"))?;
            let b = u8::from_str_radix(hex, 16).map_err(|_| format!("bad escape in {s:?}"))?;
            out.push(b);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| format!("non-utf8 name in {s:?}"))
}

/// Serializes a netlist to the checkpoint text form.
pub fn to_text(n: &Netlist) -> String {
    let mut out = String::new();
    out.push_str("eda-netlist v1\n");
    out.push_str(&format!("design {}\n", escape(&n.name)));
    out.push_str(&format!("library {}\n", escape(n.library.name())));
    out.push_str(&format!("blocks {}\n", n.block_names.len()));
    for b in &n.block_names {
        out.push_str(&format!("b {}\n", escape(b)));
    }
    out.push_str(&format!("nets {}\n", n.nets.len()));
    for net in &n.nets {
        let driver = match net.driver {
            None => "-".to_string(),
            Some(NetDriver::PrimaryInput(i)) => format!("p{i}"),
            Some(NetDriver::Instance(id)) => format!("i{}", id.index()),
        };
        out.push_str(&format!("n {} {} {}", escape(&net.name), driver, net.sinks.len()));
        for (inst, pin) in &net.sinks {
            out.push_str(&format!(" {}:{}", inst.index(), pin));
        }
        out.push('\n');
    }
    out.push_str(&format!("insts {}\n", n.instances.len()));
    for inst in &n.instances {
        let cell_name = n.library.cell(inst.cell).name.as_str();
        let block = match inst.block {
            None => "-".to_string(),
            Some(b) => b.to_string(),
        };
        out.push_str(&format!(
            "i {} {} {} {} {}",
            escape(&inst.name),
            escape(cell_name),
            block,
            inst.output.index(),
            inst.inputs.len()
        ));
        for net in &inst.inputs {
            out.push_str(&format!(" {}", net.index()));
        }
        out.push('\n');
    }
    out.push_str(&format!("pis {}", n.inputs.len()));
    for net in &n.inputs {
        out.push_str(&format!(" {}", net.index()));
    }
    out.push('\n');
    out.push_str(&format!("pos {}\n", n.outputs.len()));
    for (name, net) in &n.outputs {
        out.push_str(&format!("o {} {}\n", escape(name), net.index()));
    }
    out
}

struct Lines<'a> {
    iter: std::str::Lines<'a>,
    num: usize,
}

impl<'a> Lines<'a> {
    fn next(&mut self) -> Result<&'a str, CodecError> {
        self.num += 1;
        self.iter
            .next()
            .ok_or(CodecError::Parse { line: self.num, reason: "unexpected end of input".into() })
    }

    fn err(&self, reason: impl Into<String>) -> CodecError {
        CodecError::Parse { line: self.num, reason: reason.into() }
    }
}

/// Deserializes a netlist written by [`to_text`].
pub fn from_text(text: &str) -> Result<Netlist, CodecError> {
    let mut lines = Lines { iter: text.lines(), num: 0 };
    let header = lines.next()?;
    if header != "eda-netlist v1" {
        return Err(lines.err(format!("bad header {header:?}")));
    }

    let name = field(&mut lines, "design")?;
    let lib_name = field(&mut lines, "library")?;
    let library = match lib_name.as_str() {
        "generic" => Library::generic(),
        "nand_inv_2006" => Library::nand_inv_2006(),
        "controlled_polarity" => Library::controlled_polarity(),
        other => return Err(CodecError::UnknownLibrary(other.to_string())),
    };

    let n_blocks = count(&mut lines, "blocks")?;
    let mut block_names = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        block_names.push(field(&mut lines, "b")?);
    }

    let n_nets = count(&mut lines, "nets")?;
    let mut nets = Vec::with_capacity(n_nets);
    let mut net_by_name = HashMap::with_capacity(n_nets);
    for idx in 0..n_nets {
        let line = lines.next()?;
        let mut toks = line.split(' ');
        expect_tag(&lines, &mut toks, "n")?;
        let net_name = unescape(tok(&lines, &mut toks, "net name")?).map_err(|e| lines.err(e))?;
        let driver_tok = tok(&lines, &mut toks, "driver")?;
        let driver = match driver_tok {
            "-" => None,
            t => {
                if t.len() < 2 {
                    return Err(lines.err(format!("bad driver {t:?}")));
                }
                let (kind, rest) = t.split_at(1);
                let i: usize = rest.parse().map_err(|_| lines.err(format!("bad driver {t:?}")))?;
                match kind {
                    "p" => Some(NetDriver::PrimaryInput(i)),
                    "i" => Some(NetDriver::Instance(InstId(i as u32))),
                    _ => return Err(lines.err(format!("bad driver {t:?}"))),
                }
            }
        };
        let n_sinks: usize = parse_tok(&lines, &mut toks, "sink count")?;
        let mut sinks = Vec::with_capacity(n_sinks);
        for _ in 0..n_sinks {
            let s = tok(&lines, &mut toks, "sink")?;
            let (inst, pin) = s
                .split_once(':')
                .ok_or_else(|| lines.err(format!("bad sink {s:?}")))?;
            let inst: usize = inst.parse().map_err(|_| lines.err(format!("bad sink {s:?}")))?;
            let pin: usize = pin.parse().map_err(|_| lines.err(format!("bad sink {s:?}")))?;
            sinks.push((InstId(inst as u32), pin));
        }
        net_by_name.insert(net_name.clone(), NetId(idx as u32));
        nets.push(Net { name: net_name, driver, sinks });
    }

    let n_insts = count(&mut lines, "insts")?;
    let mut instances = Vec::with_capacity(n_insts);
    for _ in 0..n_insts {
        let line = lines.next()?;
        let mut toks = line.split(' ');
        expect_tag(&lines, &mut toks, "i")?;
        let inst_name = unescape(tok(&lines, &mut toks, "instance name")?).map_err(|e| lines.err(e))?;
        let cell_name = unescape(tok(&lines, &mut toks, "cell name")?).map_err(|e| lines.err(e))?;
        let cell = library
            .find(&cell_name)
            .ok_or_else(|| CodecError::UnknownCell(cell_name.clone()))?;
        let block_tok = tok(&lines, &mut toks, "block")?;
        let block = match block_tok {
            "-" => None,
            t => Some(t.parse().map_err(|_| lines.err(format!("bad block {t:?}")))?),
        };
        let output: usize = parse_tok(&lines, &mut toks, "output net")?;
        let n_inputs: usize = parse_tok(&lines, &mut toks, "input count")?;
        let mut inputs = Vec::with_capacity(n_inputs);
        for _ in 0..n_inputs {
            let i: usize = parse_tok(&lines, &mut toks, "input net")?;
            inputs.push(NetId(i as u32));
        }
        instances.push(Instance { name: inst_name, cell, inputs, output: NetId(output as u32), block });
    }

    let pis_line = lines.next()?;
    let mut toks = pis_line.split(' ');
    expect_tag(&lines, &mut toks, "pis")?;
    let n_pis: usize = parse_tok(&lines, &mut toks, "pi count")?;
    let mut inputs = Vec::with_capacity(n_pis);
    for _ in 0..n_pis {
        let i: usize = parse_tok(&lines, &mut toks, "pi net")?;
        inputs.push(NetId(i as u32));
    }

    let n_pos = count(&mut lines, "pos")?;
    let mut outputs = Vec::with_capacity(n_pos);
    for _ in 0..n_pos {
        let line = lines.next()?;
        let mut toks = line.split(' ');
        expect_tag(&lines, &mut toks, "o")?;
        let po_name = unescape(tok(&lines, &mut toks, "output name")?).map_err(|e| lines.err(e))?;
        let net: usize = parse_tok(&lines, &mut toks, "output net")?;
        outputs.push((po_name, NetId(net as u32)));
    }

    let netlist = Netlist { name, library, instances, nets, inputs, outputs, block_names, net_by_name };

    // Bounds sanity so later index accesses cannot panic on corrupt input.
    let n_nets = netlist.nets.len();
    let n_insts = netlist.instances.len();
    let net_ok = |id: NetId| id.index() < n_nets;
    let inst_ok = |id: InstId| id.index() < n_insts;
    let ok = netlist.instances.iter().all(|i| net_ok(i.output) && i.inputs.iter().all(|&n| net_ok(n)))
        && netlist.nets.iter().all(|n| {
            n.sinks.iter().all(|&(i, _)| inst_ok(i))
                && match n.driver {
                    Some(NetDriver::Instance(i)) => inst_ok(i),
                    _ => true,
                }
        })
        && netlist.inputs.iter().all(|&n| net_ok(n))
        && netlist.outputs.iter().all(|&(_, n)| net_ok(n));
    if !ok {
        return Err(CodecError::Parse { line: 0, reason: "index out of bounds".into() });
    }
    Ok(netlist)
}

fn field(lines: &mut Lines<'_>, tag: &str) -> Result<String, CodecError> {
    let line = lines.next()?;
    let rest = line
        .strip_prefix(tag)
        .and_then(|r| r.strip_prefix(' '))
        .ok_or_else(|| lines.err(format!("expected `{tag} ...`, got {line:?}")))?;
    unescape(rest).map_err(|e| lines.err(e))
}

fn count(lines: &mut Lines<'_>, tag: &str) -> Result<usize, CodecError> {
    let line = lines.next()?;
    let rest = line
        .strip_prefix(tag)
        .and_then(|r| r.strip_prefix(' '))
        .ok_or_else(|| lines.err(format!("expected `{tag} <count>`, got {line:?}")))?;
    rest.parse().map_err(|_| lines.err(format!("bad count in {line:?}")))
}

fn tok<'a>(
    lines: &Lines<'_>,
    toks: &mut std::str::Split<'a, char>,
    what: &str,
) -> Result<&'a str, CodecError> {
    toks.next().ok_or_else(|| lines.err(format!("missing {what}")))
}

fn parse_tok<T: std::str::FromStr>(
    lines: &Lines<'_>,
    toks: &mut std::str::Split<'_, char>,
    what: &str,
) -> Result<T, CodecError> {
    let t = tok(lines, toks, what)?;
    t.parse().map_err(|_| lines.err(format!("bad {what}: {t:?}")))
}

fn expect_tag(
    lines: &Lines<'_>,
    toks: &mut std::str::Split<'_, char>,
    tag: &str,
) -> Result<(), CodecError> {
    let t = tok(lines, toks, "tag")?;
    if t != tag {
        return Err(lines.err(format!("expected tag `{tag}`, got {t:?}")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    fn assert_identical(a: &Netlist, b: &Netlist) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.library.name(), b.library.name());
        assert_eq!(a.instances, b.instances);
        assert_eq!(a.nets, b.nets);
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.block_names, b.block_names);
        assert_eq!(a.net_by_name, b.net_by_name);
    }

    #[test]
    fn roundtrip_is_exact() {
        for design in [
            generate::switch_fabric(3, 3).unwrap(),
            generate::ripple_carry_adder(8).unwrap(),
            generate::parity_tree(16).unwrap(),
        ] {
            let text = to_text(&design);
            let back = from_text(&text).unwrap();
            assert_identical(&design, &back);
            // And the round trip is a fixed point.
            assert_eq!(to_text(&back), text);
        }
    }

    #[test]
    fn names_with_specials_survive() {
        assert_eq!(unescape(&escape("a b%c\nd\te")).unwrap(), "a b%c\nd\te");
        assert_eq!(unescape(&escape("plain_name[3]")).unwrap(), "plain_name[3]");
    }

    #[test]
    fn corrupt_input_is_a_typed_error() {
        assert!(from_text("garbage").is_err());
        let design = generate::ripple_carry_adder(4).unwrap();
        let text = to_text(&design);
        let truncated = &text[..text.len() / 2];
        assert!(from_text(truncated).is_err());
    }
}
