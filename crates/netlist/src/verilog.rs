//! Structural Verilog subset: writer and parser.
//!
//! The dialect is the flat gate-level netlist style every EDA tool in the
//! panel's decade exchanged: one `module`, `input`/`output`/`wire`
//! declarations, and named-port cell instantiations:
//!
//! ```verilog
//! module half_adder (a, b, sum, carry);
//!   input a, b;
//!   output sum, carry;
//!   wire u_sum_out, u_cy_out;
//!   XOR2_X1 u_sum (.A(a), .B(b), .Y(u_sum_out));
//!   ...
//! endmodule
//! ```
//!
//! Round-tripping through [`write_verilog`] and [`parse_verilog`] preserves
//! logic function (verified by simulation in the tests).

use crate::cell::Library;
use crate::netlist::{NetDriver, Netlist, NetlistError};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Errors from [`parse_verilog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseVerilogError {
    /// The text ended before the module was complete.
    UnexpectedEof,
    /// A token violated the expected grammar.
    Syntax { line: usize, message: String },
    /// An instance referenced a cell missing from the library.
    UnknownCell { line: usize, cell: String },
    /// An instance referenced an undeclared net.
    UnknownNet { line: usize, net: String },
    /// The netlist failed semantic validation after parsing.
    Semantic(NetlistError),
}

impl std::fmt::Display for ParseVerilogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseVerilogError::UnexpectedEof => write!(f, "unexpected end of file"),
            ParseVerilogError::Syntax { line, message } => write!(f, "syntax error on line {line}: {message}"),
            ParseVerilogError::UnknownCell { line, cell } => {
                write!(f, "line {line}: cell `{cell}` not in library")
            }
            ParseVerilogError::UnknownNet { line, net } => {
                write!(f, "line {line}: net `{net}` not declared")
            }
            ParseVerilogError::Semantic(e) => write!(f, "semantic error: {e}"),
        }
    }
}

impl std::error::Error for ParseVerilogError {}

impl From<NetlistError> for ParseVerilogError {
    fn from(e: NetlistError) -> Self {
        ParseVerilogError::Semantic(e)
    }
}

/// Serializes a netlist as structural Verilog.
///
/// # Examples
///
/// ```
/// use eda_netlist::{generate, verilog};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let n = generate::parity_tree(4)?;
/// let text = verilog::write_verilog(&n);
/// assert!(text.contains("module parity4"));
/// # Ok(())
/// # }
/// ```
pub fn write_verilog(netlist: &Netlist) -> String {
    let lib = netlist.library();
    let mut out = String::new();
    let mut ports: Vec<String> = netlist
        .primary_inputs()
        .iter()
        .map(|&n| netlist.net(n).name().to_string())
        .collect();
    ports.extend(netlist.primary_outputs().iter().map(|(name, _)| name.clone()));
    let _ = writeln!(out, "module {} ({});", sanitize(netlist.name()), ports.join(", "));
    for &pi in netlist.primary_inputs() {
        let _ = writeln!(out, "  input {};", netlist.net(pi).name());
    }
    for (name, _) in netlist.primary_outputs() {
        let _ = writeln!(out, "  output {name};");
    }
    for (id, net) in netlist.nets() {
        let is_pi = matches!(net.driver(), Some(NetDriver::PrimaryInput(_)));
        if !is_pi {
            let _ = writeln!(out, "  wire {};", net.name());
        }
        let _ = id;
    }
    // Primary outputs are aliases of internal nets; emit assigns.
    for (name, net) in netlist.primary_outputs() {
        let _ = writeln!(out, "  assign {} = {};", name, netlist.net(*net).name());
    }
    for (_, inst) in netlist.instances() {
        let def = lib.cell(inst.cell());
        let mut conns: Vec<String> = def
            .function
            .input_names()
            .iter()
            .zip(inst.inputs())
            .map(|(pin, &net)| format!(".{}({})", pin, netlist.net(net).name()))
            .collect();
        conns.push(format!(".{}({})", def.function.output_name(), netlist.net(inst.output()).name()));
        let _ = writeln!(out, "  {} {} ({});", def.name, sanitize(inst.name()), conns.join(", "));
    }
    let _ = writeln!(out, "endmodule");
    out
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_alphanumeric() || c == '_' { c } else { '_' }).collect()
}

/// Parses the structural Verilog subset produced by [`write_verilog`].
///
/// # Errors
///
/// Returns a [`ParseVerilogError`] describing the first syntax, library or
/// semantic problem encountered.
pub fn parse_verilog(text: &str, library: Arc<Library>) -> Result<Netlist, ParseVerilogError> {
    // Strip comments, join to statements terminated by ';' (plus module header).
    let mut module_name = String::new();
    let mut netlist: Option<Netlist> = None;
    let mut declared: HashMap<String, DeclKind> = HashMap::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut assigns: Vec<(String, String, usize)> = Vec::new();
    // (instance name, cell name, port connections, source line)
    type InstanceStmt = (String, String, Vec<(String, String)>, usize);
    let mut instances: Vec<InstanceStmt> = Vec::new();

    #[derive(Clone, Copy, PartialEq)]
    enum DeclKind {
        Input,
        Output,
        Wire,
    }

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let stmt = raw.split("//").next().unwrap_or("").trim();
        if stmt.is_empty() {
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("module") {
            let rest = rest.trim();
            let name_end = rest.find('(').ok_or(ParseVerilogError::Syntax {
                line,
                message: "expected `(` after module name".into(),
            })?;
            module_name = rest[..name_end].trim().to_string();
            netlist = Some(Netlist::with_library(module_name.clone(), library.clone()));
            continue;
        }
        if stmt.starts_with("endmodule") {
            break;
        }
        let stmt = stmt.strip_suffix(';').ok_or(ParseVerilogError::Syntax {
            line,
            message: format!("missing `;` in `{stmt}`"),
        })?;
        let nl = netlist.as_mut().ok_or(ParseVerilogError::Syntax {
            line,
            message: "statement before module header".into(),
        })?;
        if let Some(rest) = stmt.strip_prefix("input ") {
            for name in rest.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                nl.add_input(name);
                declared.insert(name.to_string(), DeclKind::Input);
            }
        } else if let Some(rest) = stmt.strip_prefix("output ") {
            for name in rest.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                declared.insert(name.to_string(), DeclKind::Output);
                outputs.push(name.to_string());
            }
        } else if let Some(rest) = stmt.strip_prefix("wire ") {
            for name in rest.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                declared.entry(name.to_string()).or_insert(DeclKind::Wire);
            }
        } else if let Some(rest) = stmt.strip_prefix("assign ") {
            let (lhs, rhs) = rest.split_once('=').ok_or(ParseVerilogError::Syntax {
                line,
                message: "assign without `=`".into(),
            })?;
            assigns.push((lhs.trim().to_string(), rhs.trim().to_string(), line));
        } else {
            // Cell instantiation: CELL inst (.PIN(net), ...)
            let open = stmt.find('(').ok_or(ParseVerilogError::Syntax {
                line,
                message: format!("unrecognized statement `{stmt}`"),
            })?;
            let header: Vec<&str> = stmt[..open].split_whitespace().collect();
            if header.len() != 2 {
                return Err(ParseVerilogError::Syntax {
                    line,
                    message: format!("expected `CELL name (...)`, got `{stmt}`"),
                });
            }
            let body = stmt[open + 1..].trim_end_matches(')');
            let mut conns = Vec::new();
            for part in body.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                let part = part.strip_prefix('.').ok_or(ParseVerilogError::Syntax {
                    line,
                    message: format!("expected named connection, got `{part}`"),
                })?;
                let (pin, net) = part.split_once('(').ok_or(ParseVerilogError::Syntax {
                    line,
                    message: format!("malformed connection `{part}`"),
                })?;
                conns.push((pin.trim().to_string(), net.trim_end_matches(')').trim().to_string()));
            }
            instances.push((header[0].to_string(), header[1].to_string(), conns, line));
        }
    }

    let mut nl = netlist.ok_or(ParseVerilogError::UnexpectedEof)?;
    let _ = module_name;

    // Wires and outputs that are driven by instances need net objects. We
    // create nets lazily: map net name -> NetId, creating non-input nets on
    // first mention. Instance outputs *redefine* the target net, so first
    // create all instances with fresh output nets, then alias.
    //
    // Simpler robust approach: create every declared non-input net up front,
    // then wire instances by splicing.
    let mut net_of: HashMap<String, crate::netlist::NetId> = HashMap::new();
    for &pi in nl.primary_inputs() {
        net_of.insert(nl.net(pi).name().to_string(), pi);
    }
    let names: Vec<String> = declared
        .iter()
        .filter(|&(_, &k)| k != DeclKind::Input)
        .map(|(n, _)| n.clone())
        .collect();
    let mut sorted = names;
    sorted.sort();
    for name in sorted {
        let id = nl.add_net(name.clone());
        net_of.insert(name, id);
    }

    for (cell_name, inst_name, conns, line) in instances {
        let cell = library
            .find(&cell_name)
            .ok_or(ParseVerilogError::UnknownCell { line, cell: cell_name.clone() })?;
        let function = library.cell(cell).function;
        let mut inputs = Vec::with_capacity(function.num_inputs());
        for pin in function.input_names() {
            let conn = conns
                .iter()
                .find(|(p, _)| p == pin)
                .ok_or(ParseVerilogError::Syntax {
                    line,
                    message: format!("instance `{inst_name}` missing pin `{pin}`"),
                })?;
            let net = net_of
                .get(&conn.1)
                .copied()
                .ok_or(ParseVerilogError::UnknownNet { line, net: conn.1.clone() })?;
            inputs.push(net);
        }
        let out_conn = conns
            .iter()
            .find(|(p, _)| p == function.output_name())
            .ok_or(ParseVerilogError::Syntax {
                line,
                message: format!("instance `{inst_name}` missing output pin"),
            })?;
        let target = net_of
            .get(&out_conn.1)
            .copied()
            .ok_or(ParseVerilogError::UnknownNet { line, net: out_conn.1.clone() })?;
        nl.add_gate_with_output(inst_name, cell, &inputs, target)?;
    }

    for (lhs, rhs, line) in assigns {
        let src = net_of
            .get(&rhs)
            .copied()
            .ok_or(ParseVerilogError::UnknownNet { line, net: rhs.clone() })?;
        if outputs.contains(&lhs) {
            nl.add_output(lhs, src);
        } else {
            return Err(ParseVerilogError::Syntax {
                line,
                message: format!("assign target `{lhs}` is not a declared output"),
            });
        }
    }
    // Outputs declared but never assigned: treat as direct net references.
    for name in outputs {
        let already = nl.primary_outputs().iter().any(|(o, _)| *o == name);
        if !already {
            if let Some(&id) = net_of.get(&name) {
                nl.add_output(name, id);
            }
        }
    }
    nl.validate()?;
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    fn roundtrip_equal(n: &Netlist) {
        let text = write_verilog(n);
        let parsed = parse_verilog(&text, n.library().clone()).expect("parse back");
        assert_eq!(parsed.primary_inputs().len(), n.primary_inputs().len());
        assert_eq!(parsed.primary_outputs().len(), n.primary_outputs().len());
        // Compare behaviour on bit-parallel random patterns.
        let k = n.primary_inputs().len();
        let pats: Vec<u64> = (0..k).map(|i| 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)).collect();
        let flops = n.flops().len();
        let state = vec![0u64; flops];
        let (o1, s1) = n.simulate64(&pats, &state);
        let (o2, s2) = parsed.simulate64(&pats, &vec![0u64; parsed.flops().len()]);
        assert_eq!(o1, o2, "outputs diverge after round-trip");
        assert_eq!(s1.len(), s2.len());
    }

    #[test]
    fn roundtrip_adder() {
        roundtrip_equal(&generate::ripple_carry_adder(6).unwrap());
    }

    #[test]
    fn roundtrip_parity() {
        roundtrip_equal(&generate::parity_tree(9).unwrap());
    }

    #[test]
    fn roundtrip_sequential_fabric() {
        roundtrip_equal(&generate::switch_fabric(3, 2).unwrap());
    }

    #[test]
    fn roundtrip_random() {
        let n = generate::random_logic(generate::RandomLogicConfig {
            gates: 200,
            seed: 11,
            ..Default::default()
        })
        .unwrap();
        roundtrip_equal(&n);
    }

    #[test]
    fn parse_rejects_unknown_cell() {
        let text = "module t (a, y);\n  input a;\n  output y;\n  wire w;\n  BOGUS u1 (.A(a), .Y(w));\n  assign y = w;\nendmodule\n";
        let err = parse_verilog(text, Library::generic()).unwrap_err();
        assert!(matches!(err, ParseVerilogError::UnknownCell { .. }));
    }

    #[test]
    fn parse_rejects_unknown_net() {
        let text = "module t (a, y);\n  input a;\n  output y;\n  wire w;\n  INV_X1 u1 (.A(ghost), .Y(w));\n  assign y = w;\nendmodule\n";
        let err = parse_verilog(text, Library::generic()).unwrap_err();
        assert!(matches!(err, ParseVerilogError::UnknownNet { .. }));
    }

    #[test]
    fn parse_rejects_missing_semicolon() {
        let text = "module t (a);\n  input a\nendmodule\n";
        let err = parse_verilog(text, Library::generic()).unwrap_err();
        assert!(matches!(err, ParseVerilogError::Syntax { .. }));
    }

    #[test]
    fn error_display_mentions_line() {
        let e = ParseVerilogError::Syntax { line: 42, message: "boom".into() };
        assert!(e.to_string().contains("42"));
    }
}
