//! Synthetic design generators.
//!
//! The panel's claims are made about classes of designs — arithmetic-heavy
//! datapaths, networking switch fabrics with 5× switching activity,
//! hierarchical SoCs, random control logic. Each generator here produces a
//! seeded, reproducible netlist with the structural statistics of its class.

use crate::cell::CellFunction;
use crate::netlist::{NetId, Netlist, NetlistError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`random_logic`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomLogicConfig {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of combinational gates.
    pub gates: usize,
    /// Fraction of gates followed by a register, in [0, 1].
    pub flop_fraction: f64,
    /// RNG seed; equal seeds give identical netlists.
    pub seed: u64,
}

impl Default for RandomLogicConfig {
    fn default() -> Self {
        RandomLogicConfig { inputs: 32, outputs: 16, gates: 500, flop_fraction: 0.1, seed: 1 }
    }
}

/// Generates a random combinational/sequential logic cloud.
///
/// Gates pick their function from a realistic mix and their fanins from
/// earlier signals with a locality bias, producing netlists whose
/// fanout/depth statistics resemble placed control logic.
///
/// # Errors
///
/// Propagates [`NetlistError`] from netlist construction (cannot occur for a
/// well-formed config; kept fallible per the builder API).
///
/// # Panics
///
/// Panics if `inputs == 0` or `outputs == 0`.
pub fn random_logic(cfg: RandomLogicConfig) -> Result<Netlist, NetlistError> {
    assert!(cfg.inputs > 0 && cfg.outputs > 0, "need at least one input and output");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut n = Netlist::new(format!("rand_{}g_s{}", cfg.gates, cfg.seed));
    let ck = n.add_input("clk");
    let mut signals: Vec<NetId> = (0..cfg.inputs).map(|i| n.add_input(format!("pi{i}"))).collect();

    let menu = [
        (CellFunction::Nand(2), 0.22),
        (CellFunction::Nor(2), 0.12),
        (CellFunction::And(2), 0.10),
        (CellFunction::Or(2), 0.08),
        (CellFunction::Inv, 0.12),
        (CellFunction::Xor2, 0.08),
        (CellFunction::Xnor2, 0.04),
        (CellFunction::Nand(3), 0.06),
        (CellFunction::Nor(3), 0.04),
        (CellFunction::Aoi21, 0.05),
        (CellFunction::Oai21, 0.04),
        (CellFunction::Mux2, 0.05),
    ];
    for g in 0..cfg.gates {
        let mut roll: f64 = rng.gen();
        let mut f = CellFunction::Nand(2);
        for &(cand, w) in &menu {
            if roll < w {
                f = cand;
                break;
            }
            roll -= w;
        }
        let arity = f.num_inputs();
        let mut ins = Vec::with_capacity(arity);
        for _ in 0..arity {
            // Locality bias: prefer recent signals.
            let span = signals.len();
            let back = (rng.gen::<f64>().powi(2) * span as f64) as usize;
            let idx = span - 1 - back.min(span - 1);
            ins.push(signals[idx]);
        }
        let mut out = n.add_gate_fn(format!("g{g}"), f, &ins)?;
        if rng.gen_bool(cfg.flop_fraction) {
            out = n.add_gate_fn(format!("ff{g}"), CellFunction::Dff, &[out, ck])?;
        }
        signals.push(out);
    }
    for o in 0..cfg.outputs {
        let idx = signals.len() - 1 - rng.gen_range(0..signals.len().min(cfg.outputs * 2));
        n.add_output(format!("po{o}"), signals[idx]);
    }
    Ok(n)
}

/// Generates a `width`-bit ripple-carry adder (`sum = a + b + cin`).
///
/// # Errors
///
/// Propagates [`NetlistError`] from construction.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn ripple_carry_adder(width: usize) -> Result<Netlist, NetlistError> {
    assert!(width > 0, "adder width must be positive");
    let mut n = Netlist::new(format!("rca{width}"));
    let a: Vec<NetId> = (0..width).map(|i| n.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..width).map(|i| n.add_input(format!("b{i}"))).collect();
    let mut carry = n.add_input("cin");
    for i in 0..width {
        let axb = n.add_gate_fn(format!("x1_{i}"), CellFunction::Xor2, &[a[i], b[i]])?;
        let sum = n.add_gate_fn(format!("x2_{i}"), CellFunction::Xor2, &[axb, carry])?;
        let cy = n.add_gate_fn(format!("mj_{i}"), CellFunction::Maj3, &[a[i], b[i], carry])?;
        n.add_output(format!("sum{i}"), sum);
        carry = cy;
    }
    n.add_output("cout", carry);
    Ok(n)
}

/// Generates a `width × width` array multiplier.
///
/// # Errors
///
/// Propagates [`NetlistError`] from construction.
///
/// # Panics
///
/// Panics if `width < 2`.
pub fn array_multiplier(width: usize) -> Result<Netlist, NetlistError> {
    assert!(width >= 2, "multiplier width must be at least 2");
    let mut n = Netlist::new(format!("mul{width}"));
    let a: Vec<NetId> = (0..width).map(|i| n.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..width).map(|i| n.add_input(format!("b{i}"))).collect();
    // Partial products.
    let mut pp = vec![vec![None::<NetId>; width]; width];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            pp[i][j] = Some(n.add_gate_fn(format!("pp_{i}_{j}"), CellFunction::And(2), &[ai, bj])?);
        }
    }
    // Shift-and-add accumulation: after emitting output bit i, add the next
    // shifted partial-product row to the running upper bits.
    let zero = n.add_gate_fn("tie0", CellFunction::Const0, &[])?;
    let mut acc: Vec<NetId> = (0..width).map(|j| pp[0][j].unwrap()).collect();
    let mut acc_top: NetId = zero;
    n.add_output("p0", acc[0]);
    for (i, pp_row) in pp.iter().enumerate().skip(1) {
        // shifted = acc >> 1, with the previous carry-out as the new top bit.
        let mut shifted: Vec<NetId> = acc[1..].to_vec();
        shifted.push(acc_top);
        let row: Vec<NetId> = pp_row.iter().map(|p| p.unwrap()).collect();
        let mut carry: Option<NetId> = None;
        let mut sum = Vec::with_capacity(width);
        for j in 0..width {
            let (s, c) = match carry {
                None => {
                    let s = n.add_gate_fn(format!("ha_s_{i}_{j}"), CellFunction::Xor2, &[shifted[j], row[j]])?;
                    let c = n.add_gate_fn(format!("ha_c_{i}_{j}"), CellFunction::And(2), &[shifted[j], row[j]])?;
                    (s, c)
                }
                Some(cy) => {
                    let x = n.add_gate_fn(format!("fa_x_{i}_{j}"), CellFunction::Xor2, &[shifted[j], row[j]])?;
                    let s = n.add_gate_fn(format!("fa_s_{i}_{j}"), CellFunction::Xor2, &[x, cy])?;
                    let c = n.add_gate_fn(format!("fa_c_{i}_{j}"), CellFunction::Maj3, &[shifted[j], row[j], cy])?;
                    (s, c)
                }
            };
            carry = Some(c);
            sum.push(s);
        }
        acc = sum;
        acc_top = carry.unwrap();
        n.add_output(format!("p{i}"), acc[0]);
    }
    for (k, &a) in acc.iter().enumerate().skip(1) {
        n.add_output(format!("p{}", width - 1 + k), a);
    }
    n.add_output(format!("p{}", 2 * width - 1), acc_top);
    Ok(n)
}

/// Generates a balanced XOR parity tree over `width` inputs.
///
/// # Errors
///
/// Propagates [`NetlistError`] from construction.
///
/// # Panics
///
/// Panics if `width < 2`.
pub fn parity_tree(width: usize) -> Result<Netlist, NetlistError> {
    assert!(width >= 2, "parity width must be at least 2");
    let mut n = Netlist::new(format!("parity{width}"));
    let mut level: Vec<NetId> = (0..width).map(|i| n.add_input(format!("d{i}"))).collect();
    let mut g = 0;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(n.add_gate_fn(format!("x{g}"), CellFunction::Xor2, &[pair[0], pair[1]])?);
                g += 1;
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    n.add_output("parity", level[0]);
    Ok(n)
}

/// Generates a `width`-bit equality comparator.
///
/// # Errors
///
/// Propagates [`NetlistError`] from construction.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn equality_comparator(width: usize) -> Result<Netlist, NetlistError> {
    assert!(width > 0, "comparator width must be positive");
    let mut n = Netlist::new(format!("eq{width}"));
    let a: Vec<NetId> = (0..width).map(|i| n.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..width).map(|i| n.add_input(format!("b{i}"))).collect();
    let mut eqs = Vec::with_capacity(width);
    for i in 0..width {
        eqs.push(n.add_gate_fn(format!("xn{i}"), CellFunction::Xnor2, &[a[i], b[i]])?);
    }
    let mut level = eqs;
    let mut g = 0;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(n.add_gate_fn(format!("an{g}"), CellFunction::And(2), &[pair[0], pair[1]])?);
                g += 1;
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    n.add_output("eq", level[0]);
    Ok(n)
}

/// Generates a networking-style crossbar switch fabric: `ports` input buses of
/// `width` bits, each output bus selected by per-output one-hot selects.
///
/// These netlists have the high fanout and high switching activity Rossi
/// describes for ASICs for networking ("switching activities in excess of
/// 5×").
///
/// # Errors
///
/// Propagates [`NetlistError`] from construction.
///
/// # Panics
///
/// Panics if `ports < 2` or `width == 0`.
pub fn switch_fabric(ports: usize, width: usize) -> Result<Netlist, NetlistError> {
    assert!(ports >= 2, "fabric needs at least 2 ports");
    assert!(width > 0, "bus width must be positive");
    let mut n = Netlist::new(format!("xbar{ports}x{width}"));
    let ck = n.add_input("clk");
    let data: Vec<Vec<NetId>> = (0..ports)
        .map(|p| (0..width).map(|b| n.add_input(format!("in_p{p}_b{b}"))).collect())
        .collect();
    let sels: Vec<Vec<NetId>> = (0..ports)
        .map(|o| (0..ports).map(|i| n.add_input(format!("sel_o{o}_i{i}"))).collect())
        .collect();
    for (o, sel_row) in sels.iter().enumerate() {
        for b in 0..width {
            // OR over (data AND select) terms, built as a tree.
            let mut terms = Vec::with_capacity(ports);
            for (i, bus) in data.iter().enumerate() {
                terms.push(n.add_gate_fn(
                    format!("and_o{o}_b{b}_i{i}"),
                    CellFunction::And(2),
                    &[bus[b], sel_row[i]],
                )?);
            }
            let mut level = terms;
            let mut g = 0;
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                for pair in level.chunks(2) {
                    if pair.len() == 2 {
                        next.push(n.add_gate_fn(
                            format!("or_o{o}_b{b}_{g}"),
                            CellFunction::Or(2),
                            &[pair[0], pair[1]],
                        )?);
                        g += 1;
                    } else {
                        next.push(pair[0]);
                    }
                }
                level = next;
            }
            let q = n.add_gate_fn(format!("ff_o{o}_b{b}"), CellFunction::Dff, &[level[0], ck])?;
            n.add_output(format!("out_p{o}_b{b}"), q);
        }
    }
    Ok(n)
}

/// Generates a hierarchical design: `blocks` blocks of random logic wired
/// through shared inter-block nets, with every instance labeled with its
/// block. Used for the panel's flat-vs-hierarchical implementation claim.
///
/// # Errors
///
/// Propagates [`NetlistError`] from construction.
///
/// # Panics
///
/// Panics if `blocks == 0` or `gates_per_block == 0`.
pub fn hierarchical_design(
    blocks: usize,
    gates_per_block: usize,
    seed: u64,
) -> Result<Netlist, NetlistError> {
    assert!(blocks > 0 && gates_per_block > 0, "need at least one block and gate");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut n = Netlist::new(format!("hier_{blocks}x{gates_per_block}"));
    let ck = n.add_input("clk");
    let shared: Vec<NetId> = (0..blocks * 4).map(|i| n.add_input(format!("bus{i}"))).collect();
    // Signals exported from the previous block, wiring blocks together the
    // way real SoC partitions are.
    let mut prev_exports: Vec<NetId> = Vec::new();
    for blk in 0..blocks {
        let bname = format!("blk{blk}");
        let mut signals: Vec<NetId> = shared.clone();
        signals.extend(prev_exports.iter().copied());
        for g in 0..gates_per_block {
            let f = match rng.gen_range(0..5) {
                0 => CellFunction::Nand(2),
                1 => CellFunction::Nor(2),
                2 => CellFunction::Xor2,
                3 => CellFunction::Inv,
                _ => CellFunction::And(2),
            };
            let arity = f.num_inputs();
            let ins: Vec<NetId> = (0..arity)
                .map(|_| {
                    let span = signals.len();
                    let back = (rng.gen::<f64>().powi(2) * span as f64) as usize;
                    signals[span - 1 - back.min(span - 1)]
                })
                .collect();
            let mut out = n.add_gate_fn(format!("{bname}_g{g}"), f, &ins)?;
            let inst = crate::netlist::InstId::from_index(n.num_instances() - 1);
            n.assign_block(inst, &bname);
            if rng.gen_bool(0.08) {
                out = n.add_gate_fn(format!("{bname}_ff{g}"), CellFunction::Dff, &[out, ck])?;
                let ff = crate::netlist::InstId::from_index(n.num_instances() - 1);
                n.assign_block(ff, &bname);
            }
            signals.push(out);
        }
        // Each block exports its last few signals as outputs and feeds them
        // forward to the next block.
        prev_exports = signals.iter().rev().take(4).copied().collect();
        for (k, &s) in signals.iter().rev().take(3).enumerate() {
            n.add_output(format!("{bname}_o{k}"), s);
        }
    }
    Ok(n)
}

/// Generates a Fibonacci LFSR of the given width with taps at the listed
/// bit positions (XOR feedback into bit 0).
///
/// # Errors
///
/// Propagates [`NetlistError`] from construction.
///
/// # Panics
///
/// Panics if `width < 2`, taps are empty, or a tap is out of range.
pub fn lfsr(width: usize, taps: &[usize]) -> Result<Netlist, NetlistError> {
    assert!(width >= 2, "LFSR width must be at least 2");
    assert!(!taps.is_empty(), "LFSR needs at least one tap");
    assert!(taps.iter().all(|&t| t < width), "tap out of range");
    let mut n = Netlist::new(format!("lfsr{width}"));
    let ck = n.add_input("clk");
    // Stage outputs (flop Qs) wired in a ring; create the flops' output nets
    // first, then their D logic, using add_gate_with_output.
    let lib = n.library().clone();
    let dff = lib.find_function(CellFunction::Dff).expect("generic library has DFF");
    let q_nets: Vec<NetId> = (0..width).map(|i| n.add_net(format!("q{i}"))).collect();
    // Feedback = XOR of tapped stages.
    let mut fb = q_nets[taps[0]];
    for (k, &t) in taps.iter().enumerate().skip(1) {
        fb = n.add_gate_fn(format!("fb{k}"), CellFunction::Xor2, &[fb, q_nets[t]])?;
    }
    // If only one tap, feedback is just that stage buffered (keeps a driver
    // chain shape similar to multi-tap LFSRs).
    if taps.len() == 1 {
        fb = n.add_gate_fn("fb_buf", CellFunction::Buf, &[fb])?;
    }
    // Stage 0 captures feedback; stage i captures stage i-1.
    n.add_gate_with_output("ff0", dff, &[fb, ck], q_nets[0])?;
    for i in 1..width {
        n.add_gate_with_output(format!("ff{i}"), dff, &[q_nets[i - 1], ck], q_nets[i])?;
    }
    for (i, &q) in q_nets.iter().enumerate() {
        n.add_output(format!("state{i}"), q);
    }
    Ok(n)
}

/// Generates a `width`-bit synchronous binary counter with enable.
///
/// # Errors
///
/// Propagates [`NetlistError`] from construction.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn counter(width: usize) -> Result<Netlist, NetlistError> {
    assert!(width > 0, "counter width must be positive");
    let mut n = Netlist::new(format!("counter{width}"));
    let ck = n.add_input("clk");
    let en = n.add_input("en");
    let lib = n.library().clone();
    let dff = lib.find_function(CellFunction::Dff).expect("generic library has DFF");
    let q_nets: Vec<NetId> = (0..width).map(|i| n.add_net(format!("q{i}"))).collect();
    // q' = q XOR carry_in ; carry chain = en & q0 & q1 & ...
    let mut carry = en;
    for (i, &q) in q_nets.iter().enumerate() {
        let d = n.add_gate_fn(format!("sum{i}"), CellFunction::Xor2, &[q, carry])?;
        n.add_gate_with_output(format!("ff{i}"), dff, &[d, ck], q)?;
        if i + 1 < width {
            carry = n.add_gate_fn(format!("cy{i}"), CellFunction::And(2), &[carry, q])?;
        }
    }
    for (i, &q) in q_nets.iter().enumerate() {
        n.add_output(format!("count{i}"), q);
    }
    Ok(n)
}

/// Generates a small `width`-bit ALU: op ∈ {ADD, AND, OR, XOR} selected by a
/// 2-bit opcode (op = `{op1, op0}`: 00 ADD, 01 AND, 10 OR, 11 XOR).
///
/// # Errors
///
/// Propagates [`NetlistError`] from construction.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn alu(width: usize) -> Result<Netlist, NetlistError> {
    assert!(width > 0, "ALU width must be positive");
    let mut n = Netlist::new(format!("alu{width}"));
    let a: Vec<NetId> = (0..width).map(|i| n.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..width).map(|i| n.add_input(format!("b{i}"))).collect();
    let op0 = n.add_input("op0");
    let op1 = n.add_input("op1");
    // Adder chain.
    let mut carry: Option<NetId> = None;
    let mut sum = Vec::with_capacity(width);
    for i in 0..width {
        let axb = n.add_gate_fn(format!("ax{i}"), CellFunction::Xor2, &[a[i], b[i]])?;
        match carry {
            None => {
                sum.push(axb);
                carry = Some(n.add_gate_fn(format!("cy{i}"), CellFunction::And(2), &[a[i], b[i]])?);
            }
            Some(c) => {
                sum.push(n.add_gate_fn(format!("s{i}"), CellFunction::Xor2, &[axb, c])?);
                carry =
                    Some(n.add_gate_fn(format!("cy{i}"), CellFunction::Maj3, &[a[i], b[i], c])?);
            }
        }
    }
    for i in 0..width {
        let and_i = n.add_gate_fn(format!("and{i}"), CellFunction::And(2), &[a[i], b[i]])?;
        let or_i = n.add_gate_fn(format!("or{i}"), CellFunction::Or(2), &[a[i], b[i]])?;
        let xor_i = n.add_gate_fn(format!("xor{i}"), CellFunction::Xor2, &[a[i], b[i]])?;
        // 4:1 mux from two 2:1 muxes: op1 ? (op0 ? xor : or) : (op0 ? and : sum)
        let lo = n.add_gate_fn(format!("m0_{i}"), CellFunction::Mux2, &[sum[i], and_i, op0])?;
        let hi = n.add_gate_fn(format!("m1_{i}"), CellFunction::Mux2, &[or_i, xor_i, op0])?;
        let y = n.add_gate_fn(format!("m2_{i}"), CellFunction::Mux2, &[lo, hi, op1])?;
        n.add_output(format!("y{i}"), y);
    }
    n.add_output("carry_out", carry.expect("width > 0 produces a carry"));
    Ok(n)
}

/// Hard cap on the instance count any scale-tier generator will emit.
///
/// [`mesh_fabric`] clamps its per-tile gate budget so the total instance
/// count never exceeds this, no matter what parameters are requested — the
/// same defensive posture as the daemon's `DesignSpec` size caps.
pub const MAX_SCALE_INSTANCES: usize = 1_500_000;

/// One pipeline register every this many gates in a mesh tile.
const MESH_FLOP_PERIOD: usize = 12;

/// Exact instance count [`mesh_fabric`] will produce for these parameters
/// (before cap clamping): per tile one clock buffer, `tile_gates`
/// combinational gates and `tile_gates / 12` pipeline flops, plus one clock
/// buffer per row and one root clock buffer.
pub fn mesh_instance_count(rows: usize, cols: usize, tile_gates: usize) -> usize {
    rows * cols * (1 + tile_gates + tile_gates / MESH_FLOP_PERIOD) + rows + 1
}

/// Generates a scale-tier mesh fabric: a `rows × cols` grid of logic tiles,
/// each a seeded random-logic cloud reading `width`-bit export buses from its
/// west and north neighbours (edge tiles read primary inputs), exporting its
/// last `width` signals east/south, and registering every 12th gate off a
/// buffered clock spine (root → row → tile), so no net's fanout grows with
/// the design size. Instances carry `t{r}_{c}` block labels.
///
/// The grammar is DAG-legal by construction — tiles are emitted in row-major
/// order and only ever read signals that already exist — and the instance
/// count is the exact, deterministic [`mesh_instance_count`], clamped to
/// `cap` ([`MAX_SCALE_INSTANCES`] for [`mesh_fabric`]) by shrinking the
/// per-tile gate budget.
///
/// # Errors
///
/// Propagates [`NetlistError`] from construction.
///
/// # Panics
///
/// Panics if `rows`, `cols`, `tile_gates` or `width` is zero, or if `cap`
/// cannot fit even one gate per tile.
pub fn mesh_fabric_with_cap(
    rows: usize,
    cols: usize,
    tile_gates: usize,
    width: usize,
    seed: u64,
    cap: usize,
) -> Result<Netlist, NetlistError> {
    assert!(rows > 0 && cols > 0, "mesh needs at least one tile");
    assert!(tile_gates > 0 && width > 0, "tile gate budget and bus width must be positive");
    let mut tile_gates = tile_gates;
    if mesh_instance_count(rows, cols, tile_gates) > cap {
        // Shrink the per-tile budget to the largest count under the cap.
        let tiles = rows * cols;
        let budget = cap
            .checked_sub(rows + 1 + tiles)
            .unwrap_or_else(|| panic!("cap {cap} cannot fit a {rows}x{cols} mesh"));
        // Flop-overhead scaling can round a tight-but-sufficient budget down
        // to zero; one gate per tile is always the floor we try.
        tile_gates = ((budget / tiles) * MESH_FLOP_PERIOD / (MESH_FLOP_PERIOD + 1)).max(1);
        while tile_gates > 1 && mesh_instance_count(rows, cols, tile_gates) > cap {
            tile_gates -= 1;
        }
        assert!(
            tile_gates > 0 && mesh_instance_count(rows, cols, tile_gates) <= cap,
            "cap {cap} cannot fit a {rows}x{cols} mesh"
        );
    }
    let width = width.min(tile_gates);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut n = Netlist::new(format!("mesh{rows}x{cols}t{tile_gates}w{width}s{seed}"));
    let ck_pi = n.add_input("clk");
    // North-edge and west-edge import buses are primary inputs.
    let north_pi: Vec<Vec<NetId>> = (0..cols)
        .map(|c| (0..width).map(|b| n.add_input(format!("ni_c{c}_b{b}"))).collect())
        .collect();
    let west_pi: Vec<Vec<NetId>> = (0..rows)
        .map(|r| (0..width).map(|b| n.add_input(format!("wi_r{r}_b{b}"))).collect())
        .collect();
    // Clock spine: root buffer -> one buffer per row -> one buffer per tile,
    // so clock fanout is O(rows + cols + gates/tile), never O(flops).
    let ck_root = n.add_gate_fn("ckbuf_root", CellFunction::Buf, &[ck_pi])?;
    let row_ck: Vec<NetId> = (0..rows)
        .map(|r| n.add_gate_fn(format!("ckbuf_r{r}"), CellFunction::Buf, &[ck_root]))
        .collect::<Result<_, _>>()?;

    let mut exports: Vec<Vec<NetId>> = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let bname = format!("t{r}_{c}");
            let tile_ck = n.add_gate_fn(format!("{bname}_ck"), CellFunction::Buf, &[row_ck[r]])?;
            n.assign_block(crate::netlist::InstId::from_index(n.num_instances() - 1), &bname);
            let mut signals: Vec<NetId> = Vec::with_capacity(2 * width + tile_gates);
            signals.extend_from_slice(if c == 0 { &west_pi[r] } else { &exports[r * cols + c - 1] });
            signals.extend_from_slice(if r == 0 { &north_pi[c] } else { &exports[(r - 1) * cols + c] });
            for g in 0..tile_gates {
                let f = match rng.gen_range(0..5) {
                    0 => CellFunction::Nand(2),
                    1 => CellFunction::Nor(2),
                    2 => CellFunction::Xor2,
                    3 => CellFunction::Inv,
                    _ => CellFunction::And(2),
                };
                let arity = f.num_inputs();
                let ins: Vec<NetId> = (0..arity)
                    .map(|_| {
                        let span = signals.len();
                        let back = (rng.gen::<f64>().powi(2) * span as f64) as usize;
                        signals[span - 1 - back.min(span - 1)]
                    })
                    .collect();
                let mut out = n.add_gate_fn(format!("{bname}_g{g}"), f, &ins)?;
                n.assign_block(crate::netlist::InstId::from_index(n.num_instances() - 1), &bname);
                if (g + 1) % MESH_FLOP_PERIOD == 0 {
                    out = n.add_gate_fn(format!("{bname}_ff{g}"), CellFunction::Dff, &[out, tile_ck])?;
                    n.assign_block(crate::netlist::InstId::from_index(n.num_instances() - 1), &bname);
                }
                signals.push(out);
            }
            exports.push(signals[signals.len() - width..].to_vec());
        }
    }
    // South and east edge exports become primary outputs.
    for c in 0..cols {
        for (b, &s) in exports[(rows - 1) * cols + c].iter().enumerate() {
            n.add_output(format!("so_c{c}_b{b}"), s);
        }
    }
    for r in 0..rows {
        for (b, &s) in exports[r * cols + cols - 1].iter().enumerate() {
            n.add_output(format!("eo_r{r}_b{b}"), s);
        }
    }
    Ok(n)
}

/// [`mesh_fabric_with_cap`] under the default [`MAX_SCALE_INSTANCES`] cap.
///
/// # Errors
///
/// Propagates [`NetlistError`] from construction.
pub fn mesh_fabric(
    rows: usize,
    cols: usize,
    tile_gates: usize,
    width: usize,
    seed: u64,
) -> Result<Netlist, NetlistError> {
    mesh_fabric_with_cap(rows, cols, tile_gates, width, seed, MAX_SCALE_INSTANCES)
}

/// Sizes a [`mesh_fabric`] to approximately `target_instances` (within a few
/// percent for targets ≥ 10⁴) and generates it: the scale tier's front door.
/// The target is itself clamped to [`MAX_SCALE_INSTANCES`].
///
/// # Errors
///
/// Propagates [`NetlistError`] from construction.
///
/// # Panics
///
/// Panics if `target_instances < 100`.
pub fn scale_mesh(target_instances: usize, seed: u64) -> Result<Netlist, NetlistError> {
    assert!(target_instances >= 100, "scale tier starts at 100 instances");
    let target = target_instances.min(MAX_SCALE_INSTANCES);
    // ~100 instances per tile: big enough to dominate the spine overhead,
    // small enough that the mesh has real 2-D extent and wirelength stays
    // tile-local (a placer that recovers the lattice sees mostly short
    // nets, which is what keeps routing demand sublinear in the die span).
    let tiles_needed = (target / 100).max(1);
    let side = (tiles_needed as f64).sqrt().ceil() as usize;
    let tiles = side * side;
    let per_tile = (target / tiles).saturating_sub(1).max(1);
    let tile_gates = (per_tile * MESH_FLOP_PERIOD / (MESH_FLOP_PERIOD + 1)).max(1);
    mesh_fabric(side, side, tile_gates, 8, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_logic_is_deterministic() {
        let a = random_logic(RandomLogicConfig { seed: 7, ..Default::default() }).unwrap();
        let b = random_logic(RandomLogicConfig { seed: 7, ..Default::default() }).unwrap();
        assert_eq!(a.num_instances(), b.num_instances());
        let (oa, _) = a.simulate64(&vec![0xDEAD_BEEF; a.primary_inputs().len()], &[]);
        let (ob, _) = b.simulate64(&vec![0xDEAD_BEEF; b.primary_inputs().len()], &[]);
        assert_eq!(oa, ob);
        // Same gate budget across seeds, up to the stochastic flop draws
        // (gen_bool per gate makes the exact count seed-dependent).
        let c = random_logic(RandomLogicConfig { seed: 8, ..Default::default() }).unwrap();
        let diff = c.num_instances().abs_diff(a.num_instances());
        assert!(diff * 50 <= a.num_instances(), "budgets diverge: {diff}");
    }

    #[test]
    fn random_logic_validates() {
        for seed in 0..4 {
            let n = random_logic(RandomLogicConfig { gates: 300, seed, ..Default::default() }).unwrap();
            n.validate().unwrap();
            assert!(n.num_instances() >= 300);
        }
    }

    #[test]
    fn adder_adds() {
        let n = ripple_carry_adder(8).unwrap();
        n.validate().unwrap();
        for (a, b, cin) in [(3u32, 5u32, 0u32), (255, 1, 0), (100, 155, 1), (0, 0, 1)] {
            let mut ins = Vec::new();
            for i in 0..8 {
                ins.push((a >> i) & 1 == 1);
            }
            for i in 0..8 {
                ins.push((b >> i) & 1 == 1);
            }
            ins.push(cin == 1);
            let (outs, _) = n.simulate(&ins, &[]);
            let mut got = 0u32;
            for (i, &o) in outs.iter().enumerate() {
                got |= (o as u32) << i;
            }
            assert_eq!(got, a + b + cin, "{a}+{b}+{cin}");
        }
    }

    #[test]
    fn multiplier_multiplies() {
        let n = array_multiplier(4).unwrap();
        n.validate().unwrap();
        for a in 0u32..16 {
            for b in 0u32..16 {
                let mut ins = Vec::new();
                for i in 0..4 {
                    ins.push((a >> i) & 1 == 1);
                }
                for i in 0..4 {
                    ins.push((b >> i) & 1 == 1);
                }
                let (outs, _) = n.simulate(&ins, &[]);
                let mut got = 0u32;
                for (i, &o) in outs.iter().enumerate() {
                    got |= (o as u32) << i;
                }
                assert_eq!(got, a * b, "{a}*{b} gave {got}");
            }
        }
    }

    #[test]
    fn parity_tree_is_parity() {
        let n = parity_tree(16).unwrap();
        n.validate().unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let ins: Vec<bool> = (0..16).map(|_| rng.gen_bool(0.5)).collect();
            let (outs, _) = n.simulate(&ins, &[]);
            assert_eq!(outs[0], ins.iter().filter(|&&b| b).count() % 2 == 1);
        }
    }

    #[test]
    fn comparator_compares() {
        let n = equality_comparator(6).unwrap();
        n.validate().unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let a: Vec<bool> = (0..6).map(|_| rng.gen_bool(0.5)).collect();
            let equal = rng.gen_bool(0.5);
            let b: Vec<bool> = if equal {
                a.clone()
            } else {
                let mut b = a.clone();
                let i = rng.gen_range(0..6);
                b[i] = !b[i];
                b
            };
            let ins: Vec<bool> = a.iter().chain(b.iter()).copied().collect();
            let (outs, _) = n.simulate(&ins, &[]);
            assert_eq!(outs[0], equal);
        }
    }

    #[test]
    fn switch_fabric_routes() {
        let n = switch_fabric(4, 2).unwrap();
        n.validate().unwrap();
        // Select input 2 on output 0, input 0 on others; drive distinct data.
        let mut ins = vec![false]; // clk
        // data: port p bit b = (p == 2)
        for p in 0..4 {
            for _b in 0..2 {
                ins.push(p == 2);
            }
        }
        // sel: output 0 takes input 2.
        for o in 0..4 {
            for i in 0..4 {
                ins.push(o == 0 && i == 2);
            }
        }
        let (_, state) = n.simulate(&ins, &[]);
        // Flops are created per (output, bit) in order; out 0 bits captured 1.
        assert!(state[0] && state[1], "output 0 must capture input 2's data");
        assert!(!state[2] && !state[3], "output 1 selected nothing");
    }

    #[test]
    fn hierarchical_design_has_blocks() {
        let n = hierarchical_design(4, 100, 9).unwrap();
        n.validate().unwrap();
        assert_eq!(n.block_names().len(), 4);
        let labeled = n.instances().filter(|(_, i)| i.block().is_some()).count();
        assert_eq!(labeled, n.num_instances(), "every instance is labeled");
    }

    #[test]
    fn lfsr_cycles_with_maximal_period_taps() {
        // x^4 + x^3 + 1 (taps 3,2) is maximal: period 15.
        let n = lfsr(4, &[3, 2]).unwrap();
        n.validate().unwrap();
        let mut state = vec![1u64, 0, 0, 0];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..15 {
            let key: Vec<u64> = state.iter().map(|&v| v & 1).collect();
            assert!(seen.insert(key), "state repeated before the full period");
            let (_, next) = n.simulate64(&[0], &state);
            state = next;
        }
        let key: Vec<u64> = state.iter().map(|&v| v & 1).collect();
        assert!(seen.contains(&key), "period-15 LFSR returns to a seen state");
    }

    #[test]
    fn counter_counts() {
        let n = counter(4).unwrap();
        n.validate().unwrap();
        let mut state = vec![0u64; 4];
        for expect in 1u64..=10 {
            let (_, next) = n.simulate64(&[0, 1], &state); // en = 1
            state = next;
            let value: u64 = state.iter().enumerate().map(|(i, &b)| (b & 1) << i).sum();
            assert_eq!(value, expect % 16, "count after {expect} ticks");
        }
        // Disabled: holds.
        let (_, held) = n.simulate64(&[0, 0], &state);
        assert_eq!(held, state);
    }

    #[test]
    fn alu_implements_all_ops() {
        let n = alu(4).unwrap();
        n.validate().unwrap();
        for a in 0u32..16 {
            for b in [0u32, 3, 9, 15] {
                for (op, expect) in [
                    (0u32, (a + b) & 0xF),
                    (1, a & b),
                    (2, a | b),
                    (3, a ^ b),
                ] {
                    let mut ins = Vec::new();
                    for i in 0..4 {
                        ins.push((a >> i) & 1 == 1);
                    }
                    for i in 0..4 {
                        ins.push((b >> i) & 1 == 1);
                    }
                    ins.push(op & 1 == 1);
                    ins.push(op >> 1 & 1 == 1);
                    let (outs, _) = n.simulate(&ins, &[]);
                    let got: u32 = outs[..4]
                        .iter()
                        .enumerate()
                        .map(|(i, &o)| (o as u32) << i)
                        .sum();
                    assert_eq!(got, expect, "a={a} b={b} op={op}");
                    if op == 0 {
                        assert_eq!(outs[4], (a + b) > 15, "carry for {a}+{b}");
                    }
                }
            }
        }
    }

    #[test]
    fn mesh_fabric_count_is_exact_and_validates() {
        let n = mesh_fabric(3, 4, 50, 4, 11).unwrap();
        n.validate().unwrap();
        assert_eq!(n.num_instances(), mesh_instance_count(3, 4, 50));
        assert_eq!(n.block_names().len(), 12, "one block per tile");
        let labeled = n.instances().filter(|(_, i)| i.block().is_some()).count();
        // Everything but the root and per-row clock buffers is tile-labeled.
        assert_eq!(labeled, n.num_instances() - 4);
    }

    #[test]
    fn mesh_fabric_is_deterministic() {
        let a = mesh_fabric(2, 3, 40, 4, 5).unwrap();
        let b = mesh_fabric(2, 3, 40, 4, 5).unwrap();
        assert_eq!(a.num_instances(), b.num_instances());
        let ins = vec![0xFACE_CAFE_u64; a.primary_inputs().len()];
        assert_eq!(a.simulate64(&ins, &[]), b.simulate64(&ins, &[]));
        let c = mesh_fabric(2, 3, 40, 4, 6).unwrap();
        assert_eq!(c.num_instances(), a.num_instances(), "count is seed-independent");
    }

    #[test]
    fn mesh_fabric_respects_cap() {
        let n = mesh_fabric_with_cap(3, 3, 10_000, 4, 1, 500).unwrap();
        assert!(n.num_instances() <= 500, "got {}", n.num_instances());
        n.validate().unwrap();
    }

    #[test]
    fn mesh_fabric_fanout_does_not_scale_with_flop_count() {
        // The buffered clock spine keeps max fanout O(cols + gates/tile),
        // never O(total flops).
        let n = mesh_fabric(4, 4, 60, 4, 2).unwrap();
        let max_fanout = n.nets().map(|(_, net)| net.fanout()).max().unwrap();
        let flops = n.flops().len();
        assert!(flops > 4 * 4 * 4, "mesh has pipeline flops");
        assert!(max_fanout < flops, "clock must be buffered, not flat");
        assert!(max_fanout <= 64, "fanout stays tile-local, got {max_fanout}");
    }

    #[test]
    fn scale_mesh_hits_its_target() {
        for target in [10_000usize, 25_000] {
            let n = scale_mesh(target, 3).unwrap();
            let got = n.num_instances();
            let err = got.abs_diff(target) as f64 / target as f64;
            assert!(err < 0.10, "target {target} got {got} ({err:.2})");
        }
        // Targets beyond the cap are clamped, not honoured.
        let side = ((MAX_SCALE_INSTANCES / 800) as f64).sqrt().ceil() as usize;
        assert!(mesh_instance_count(side, side, 800) <= 2 * MAX_SCALE_INSTANCES);
    }

    #[test]
    fn fabric_has_high_fanout_structure() {
        let n = switch_fabric(8, 4).unwrap();
        let max_fanout = n.nets().map(|(_, net)| net.fanout()).max().unwrap();
        assert!(max_fanout >= 4, "data inputs fan out to every output mux");
    }
}
