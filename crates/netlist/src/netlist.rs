//! The gate-level netlist graph: instances, nets, ports, hierarchy labels,
//! validation, topological ordering and bit-parallel simulation.

use crate::cell::{CellFunction, CellId, Library};
use std::collections::HashMap;
use std::sync::Arc;

/// Index of a net inside a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Position of the net in the netlist's net table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of an instance inside a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub(crate) u32);

impl InstId {
    /// Position of the instance in the netlist's instance table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an instance id from a raw index.
    ///
    /// Useful for crates that store per-instance side tables (placements,
    /// activities) indexed by position.
    pub fn from_index(i: usize) -> InstId {
        InstId(i as u32)
    }
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetDriver {
    /// Driven by the `usize`-th primary input.
    PrimaryInput(usize),
    /// Driven by an instance's output pin.
    Instance(InstId),
}

/// A net: one driver, any number of instance sinks, possibly a primary
/// output.
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    pub(crate) name: String,
    pub(crate) driver: Option<NetDriver>,
    /// `(instance, input-pin-position)` pairs fed by this net.
    pub(crate) sinks: Vec<(InstId, usize)>,
}

impl Net {
    /// Net name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The driver, if connected.
    pub fn driver(&self) -> Option<NetDriver> {
        self.driver
    }

    /// Instance input pins fed by this net.
    pub fn sinks(&self) -> &[(InstId, usize)] {
        &self.sinks
    }

    /// Fanout count (instance sinks only; primary outputs are not counted).
    pub fn fanout(&self) -> usize {
        self.sinks.len()
    }
}

/// A cell instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    pub(crate) name: String,
    pub(crate) cell: CellId,
    pub(crate) inputs: Vec<NetId>,
    pub(crate) output: NetId,
    /// Hierarchy label: which named block this instance belongs to
    /// (`None` = top level). Used by hierarchical placement and the panel's
    /// flat-vs-hierarchical comparison.
    pub(crate) block: Option<u32>,
}

impl Instance {
    /// Instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The library cell this instantiates.
    pub fn cell(&self) -> CellId {
        self.cell
    }

    /// Input nets in pin order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Output net.
    pub fn output(&self) -> NetId {
        self.output
    }

    /// Hierarchy block index, if assigned.
    pub fn block(&self) -> Option<u32> {
        self.block
    }
}

/// Errors produced by [`Netlist::validate`] and the builder methods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A net has two drivers.
    MultipleDrivers(String),
    /// A net that is read has no driver.
    UndrivenNet(String),
    /// An instance was built with the wrong number of input nets.
    ArityMismatch { instance: String, expected: usize, got: usize },
    /// The combinational core has a cycle through these instance names.
    CombinationalCycle(Vec<String>),
    /// Name lookup failed.
    UnknownName(String),
}

impl std::fmt::Display for NetlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetlistError::MultipleDrivers(n) => write!(f, "net `{n}` has multiple drivers"),
            NetlistError::UndrivenNet(n) => write!(f, "net `{n}` is read but never driven"),
            NetlistError::ArityMismatch { instance, expected, got } => {
                write!(f, "instance `{instance}` expects {expected} inputs, got {got}")
            }
            NetlistError::CombinationalCycle(path) => {
                write!(f, "combinational cycle through: {}", path.join(" -> "))
            }
            NetlistError::UnknownName(n) => write!(f, "unknown name `{n}`"),
        }
    }
}

impl std::error::Error for NetlistError {}

/// A flat gate-level netlist bound to a [`Library`].
///
/// # Examples
///
/// Build a 1-bit half adder and simulate it:
///
/// ```
/// use eda_netlist::{CellFunction, Library, Netlist};
///
/// # fn main() -> Result<(), eda_netlist::NetlistError> {
/// let mut n = Netlist::new("half_adder");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let sum = n.add_gate_fn("u_sum", CellFunction::Xor2, &[a, b])?;
/// let carry = n.add_gate_fn("u_cy", CellFunction::And(2), &[a, b])?;
/// n.add_output("sum", sum);
/// n.add_output("carry", carry);
/// n.validate()?;
///
/// let (outs, _state) = n.simulate(&[true, true], &[]);
/// assert_eq!(outs, vec![false, true]); // 1+1 = 10b
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) library: Arc<Library>,
    pub(crate) instances: Vec<Instance>,
    pub(crate) nets: Vec<Net>,
    pub(crate) inputs: Vec<NetId>,
    pub(crate) outputs: Vec<(String, NetId)>,
    pub(crate) block_names: Vec<String>,
    pub(crate) net_by_name: HashMap<String, NetId>,
}

impl Netlist {
    /// Creates an empty netlist bound to [`Library::generic`].
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist::with_library(name, Library::generic())
    }

    /// Creates an empty netlist bound to the given library.
    pub fn with_library(name: impl Into<String>, library: Arc<Library>) -> Netlist {
        Netlist {
            name: name.into(),
            library,
            instances: Vec::new(),
            nets: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            block_names: Vec::new(),
            net_by_name: HashMap::new(),
        }
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The bound library.
    pub fn library(&self) -> &Arc<Library> {
        &self.library
    }

    /// Adds a fresh net. Names are made unique by suffixing if needed.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let mut name = name.into();
        if self.net_by_name.contains_key(&name) {
            let mut i = 1;
            while self.net_by_name.contains_key(&format!("{name}_{i}")) {
                i += 1;
            }
            name = format!("{name}_{i}");
        }
        let id = NetId(self.nets.len() as u32);
        self.net_by_name.insert(name.clone(), id);
        self.nets.push(Net { name, driver: None, sinks: Vec::new() });
        id
    }

    /// Adds a primary input and its net.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.add_net(name);
        let pi_index = self.inputs.len();
        self.nets[id.index()].driver = Some(NetDriver::PrimaryInput(pi_index));
        self.inputs.push(id);
        id
    }

    /// Marks a net as a primary output.
    pub fn add_output(&mut self, name: impl Into<String>, net: NetId) {
        self.outputs.push((name.into(), net));
    }

    /// Adds an instance of `cell` driving a fresh output net, returning the
    /// output net id.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] if `inputs` does not match the
    /// cell's pin count.
    pub fn add_gate(
        &mut self,
        name: impl Into<String>,
        cell: CellId,
        inputs: &[NetId],
    ) -> Result<NetId, NetlistError> {
        let name = name.into();
        let expected = self.library.cell(cell).function.num_inputs();
        if inputs.len() != expected {
            return Err(NetlistError::ArityMismatch { instance: name, expected, got: inputs.len() });
        }
        let out = self.add_net(format!("{name}_out"));
        let inst = InstId(self.instances.len() as u32);
        for (pin, &n) in inputs.iter().enumerate() {
            self.nets[n.index()].sinks.push((inst, pin));
        }
        self.nets[out.index()].driver = Some(NetDriver::Instance(inst));
        self.instances.push(Instance { name, cell, inputs: inputs.to_vec(), output: out, block: None });
        Ok(out)
    }

    /// Adds an instance of `cell` driving an existing, not-yet-driven net.
    ///
    /// Used by parsers and rewriters that create nets before instances.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] on pin-count mismatch or
    /// [`NetlistError::MultipleDrivers`] if `output` already has a driver.
    pub fn add_gate_with_output(
        &mut self,
        name: impl Into<String>,
        cell: CellId,
        inputs: &[NetId],
        output: NetId,
    ) -> Result<InstId, NetlistError> {
        let name = name.into();
        let expected = self.library.cell(cell).function.num_inputs();
        if inputs.len() != expected {
            return Err(NetlistError::ArityMismatch { instance: name, expected, got: inputs.len() });
        }
        if self.nets[output.index()].driver.is_some() {
            return Err(NetlistError::MultipleDrivers(self.nets[output.index()].name.clone()));
        }
        let inst = InstId(self.instances.len() as u32);
        for (pin, &n) in inputs.iter().enumerate() {
            self.nets[n.index()].sinks.push((inst, pin));
        }
        self.nets[output.index()].driver = Some(NetDriver::Instance(inst));
        self.instances.push(Instance { name, cell, inputs: inputs.to_vec(), output, block: None });
        Ok(inst)
    }

    /// Like [`Netlist::add_gate`] but looks the cell up by function in the
    /// bound library.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownName`] if the library has no cell with
    /// this function, or an arity error as in [`Netlist::add_gate`].
    pub fn add_gate_fn(
        &mut self,
        name: impl Into<String>,
        function: CellFunction,
        inputs: &[NetId],
    ) -> Result<NetId, NetlistError> {
        let cell = self
            .library
            .find_function(function)
            .ok_or_else(|| NetlistError::UnknownName(format!("{function:?}")))?;
        self.add_gate(name, cell, inputs)
    }

    /// Reconnects one input pin of an instance to a different net, updating
    /// sink lists on both nets.
    ///
    /// # Panics
    ///
    /// Panics if `pin` is out of range for the instance.
    pub fn replace_input(&mut self, inst: InstId, pin: usize, net: NetId) {
        let old = self.instances[inst.index()].inputs[pin];
        if old == net {
            return;
        }
        let sinks = &mut self.nets[old.index()].sinks;
        if let Some(pos) = sinks.iter().position(|&(s, p)| s == inst && p == pin) {
            sinks.remove(pos);
        }
        self.nets[net.index()].sinks.push((inst, pin));
        self.instances[inst.index()].inputs[pin] = net;
    }

    /// Assigns an instance to a named hierarchy block, creating the block on
    /// first use.
    pub fn assign_block(&mut self, inst: InstId, block_name: &str) {
        let idx = match self.block_names.iter().position(|b| b == block_name) {
            Some(i) => i as u32,
            None => {
                self.block_names.push(block_name.to_string());
                (self.block_names.len() - 1) as u32
            }
        };
        self.instances[inst.index()].block = Some(idx);
    }

    /// Names of all hierarchy blocks.
    pub fn block_names(&self) -> &[String] {
        &self.block_names
    }

    /// All instances with ids.
    pub fn instances(&self) -> impl Iterator<Item = (InstId, &Instance)> {
        self.instances.iter().enumerate().map(|(i, inst)| (InstId(i as u32), inst))
    }

    /// All nets with ids.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets.iter().enumerate().map(|(i, n)| (NetId(i as u32), n))
    }

    /// Looks up one instance.
    pub fn instance(&self, id: InstId) -> &Instance {
        &self.instances[id.index()]
    }

    /// Looks up one net.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Finds a net by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_by_name.get(name).copied()
    }

    /// Number of instances.
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Primary input nets in declaration order.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs as `(name, net)` pairs.
    pub fn primary_outputs(&self) -> &[(String, NetId)] {
        &self.outputs
    }

    /// Total cell area in µm² at the library's reference node.
    pub fn area_um2(&self) -> f64 {
        self.instances.iter().map(|i| self.library.cell(i.cell).area_um2).sum()
    }

    /// Total leakage in nW at the library's reference node.
    pub fn leakage_nw(&self) -> f64 {
        self.instances.iter().map(|i| self.library.cell(i.cell).leakage_nw).sum()
    }

    /// Instance ids of all sequential cells, in instance order.
    pub fn flops(&self) -> Vec<InstId> {
        self.instances()
            .filter(|(_, i)| self.library.cell(i.cell).function.is_sequential())
            .map(|(id, _)| id)
            .collect()
    }

    /// Checks structural sanity: single drivers, correct arity, no
    /// combinational cycles, outputs driven.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for inst in &self.instances {
            let expected = self.library.cell(inst.cell).function.num_inputs();
            if inst.inputs.len() != expected {
                return Err(NetlistError::ArityMismatch {
                    instance: inst.name.clone(),
                    expected,
                    got: inst.inputs.len(),
                });
            }
        }
        for net in &self.nets {
            if net.driver.is_none() && (!net.sinks.is_empty() || self.outputs.iter().any(|(_, o)| self.nets[o.index()].name == net.name)) {
                return Err(NetlistError::UndrivenNet(net.name.clone()));
            }
        }
        self.topo_order().map(|_| ())
    }

    /// Topological order of the combinational instances (flip-flop outputs
    /// are treated as sources; flip-flop/clock-gate inputs as sinks).
    /// Sequential and physical-only instances appear at the end.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational core
    /// is cyclic.
    pub fn topo_order(&self) -> Result<Vec<InstId>, NetlistError> {
        let n = self.instances.len();
        let mut indeg = vec![0usize; n];
        // Combinational edge: driver instance (combinational) -> sink instance
        // (combinational).
        let is_comb = |i: usize| {
            let f = self.library.cell(self.instances[i].cell).function;
            !f.is_sequential() && !f.is_physical_only()
        };
        for (i, inst) in self.instances.iter().enumerate() {
            if !is_comb(i) {
                continue;
            }
            for &input in &inst.inputs {
                if let Some(NetDriver::Instance(d)) = self.nets[input.index()].driver {
                    if is_comb(d.index()) {
                        indeg[i] += 1;
                    }
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| is_comb(i) && indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let i = queue[head];
            head += 1;
            order.push(InstId(i as u32));
            for &(sink, _) in &self.nets[self.instances[i].output.index()].sinks {
                let s = sink.index();
                if is_comb(s) {
                    indeg[s] -= 1;
                    if indeg[s] == 0 {
                        queue.push(s);
                    }
                }
            }
        }
        let comb_count = (0..n).filter(|&i| is_comb(i)).count();
        if order.len() != comb_count {
            let cyclic: Vec<String> = (0..n)
                .filter(|&i| is_comb(i) && indeg[i] > 0)
                .take(8)
                .map(|i| self.instances[i].name.clone())
                .collect();
            return Err(NetlistError::CombinationalCycle(cyclic));
        }
        for i in 0..n {
            if !is_comb(i) {
                order.push(InstId(i as u32));
            }
        }
        Ok(order)
    }

    /// Logic depth (number of combinational levels on the longest path).
    pub fn logic_depth(&self) -> usize {
        let order = match self.topo_order() {
            Ok(o) => o,
            Err(_) => return 0,
        };
        let mut level = vec![0usize; self.instances.len()];
        let mut max = 0;
        for id in order {
            let inst = &self.instances[id.index()];
            let f = self.library.cell(inst.cell).function;
            if f.is_sequential() || f.is_physical_only() {
                continue;
            }
            let mut l = 0;
            for &input in &inst.inputs {
                if let Some(NetDriver::Instance(d)) = self.nets[input.index()].driver {
                    let df = self.library.cell(self.instances[d.index()].cell).function;
                    if !df.is_sequential() && !df.is_physical_only() {
                        l = l.max(level[d.index()] + 1);
                    }
                }
            }
            level[id.index()] = l.max(1);
            max = max.max(level[id.index()]);
        }
        max
    }

    /// Single-pattern functional simulation.
    ///
    /// `inputs` must match the primary-input count; `state` must match the
    /// flip-flop count (from [`Netlist::flops`], in that order) or be empty
    /// (all zeros). Returns `(primary outputs, next state)`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has the wrong length or the netlist is cyclic.
    pub fn simulate(&self, inputs: &[bool], state: &[bool]) -> (Vec<bool>, Vec<bool>) {
        let ins: Vec<u64> = inputs.iter().map(|&b| if b { 1 } else { 0 }).collect();
        let st: Vec<u64> = state.iter().map(|&b| if b { 1 } else { 0 }).collect();
        let (o, s) = self.simulate64(&ins, &st);
        (o.iter().map(|&w| w & 1 == 1).collect(), s.iter().map(|&w| w & 1 == 1).collect())
    }

    /// Bit-parallel simulation: 64 patterns per call, one per bit lane.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary-input count, if
    /// `state` is non-empty and differs from the flip-flop count, or if the
    /// combinational core is cyclic.
    pub fn simulate64(&self, inputs: &[u64], state: &[u64]) -> (Vec<u64>, Vec<u64>) {
        assert_eq!(inputs.len(), self.inputs.len(), "primary input count mismatch");
        let flops = self.flops();
        assert!(
            state.is_empty() || state.len() == flops.len(),
            "state length {} != flop count {}",
            state.len(),
            flops.len()
        );
        let mut value = vec![0u64; self.nets.len()];
        for (pi, &net) in self.inputs.iter().enumerate() {
            value[net.index()] = inputs[pi];
        }
        for (fi, &flop) in flops.iter().enumerate() {
            let out = self.instances[flop.index()].output;
            value[out.index()] = if state.is_empty() { 0 } else { state[fi] };
        }
        let order = self.topo_order().expect("simulate requires an acyclic netlist");
        for id in order {
            let inst = &self.instances[id.index()];
            let f = self.library.cell(inst.cell).function;
            if f.is_sequential() || f.is_physical_only() {
                continue;
            }
            let ins: Vec<u64> = inst.inputs.iter().map(|n| value[n.index()]).collect();
            value[inst.output.index()] = f.eval64(&ins);
        }
        let outs = self.outputs.iter().map(|(_, n)| value[n.index()]).collect();
        let next = flops
            .iter()
            .map(|&flop| {
                let inst = &self.instances[flop.index()];
                let f = self.library.cell(inst.cell).function;
                let ins: Vec<u64> = inst.inputs.iter().map(|n| value[n.index()]).collect();
                f.eval64(&ins)
            })
            .collect();
        (outs, next)
    }

    /// Rebinds the netlist to a different library by cell-function matching.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownName`] if some instance's function has
    /// no equivalent in the new library.
    pub fn rebind(&self, library: Arc<Library>) -> Result<Netlist, NetlistError> {
        let mut out = self.clone();
        for inst in &mut out.instances {
            let f = self.library.cell(inst.cell).function;
            inst.cell = library
                .find_function(f)
                .ok_or_else(|| NetlistError::UnknownName(format!("{f:?}")))?;
        }
        out.library = library;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> Netlist {
        let mut n = Netlist::new("fa");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("cin");
        let axb = n.add_gate_fn("u1", CellFunction::Xor2, &[a, b]).unwrap();
        let sum = n.add_gate_fn("u2", CellFunction::Xor2, &[axb, c]).unwrap();
        let cy = n.add_gate_fn("u3", CellFunction::Maj3, &[a, b, c]).unwrap();
        n.add_output("sum", sum);
        n.add_output("cout", cy);
        n
    }

    #[test]
    fn full_adder_truth_table() {
        let n = full_adder();
        n.validate().unwrap();
        for p in 0u32..8 {
            let ins = [(p & 1) != 0, (p & 2) != 0, (p & 4) != 0];
            let (outs, _) = n.simulate(&ins, &[]);
            let expect = ins.iter().filter(|&&b| b).count();
            let got = outs[0] as usize + 2 * outs[1] as usize;
            assert_eq!(got, expect, "pattern {p}");
        }
    }

    #[test]
    fn arity_checked_on_add() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let err = n.add_gate_fn("u", CellFunction::Nand(2), &[a]).unwrap_err();
        assert!(matches!(err, NetlistError::ArityMismatch { expected: 2, got: 1, .. }));
    }

    #[test]
    fn net_names_deduplicated() {
        let mut n = Netlist::new("t");
        let a = n.add_net("x");
        let b = n.add_net("x");
        assert_ne!(n.net(a).name(), n.net(b).name());
    }

    #[test]
    fn sequential_simulation_steps_state() {
        // 1-bit toggle: q' = !q via INV -> DFF loop.
        let mut n = Netlist::new("toggle");
        let ck = n.add_input("ck");
        let loopback = n.add_net("q");
        let nq = n.add_gate_fn("u_inv", CellFunction::Inv, &[loopback]).unwrap();
        // Wire flop output to loopback by constructing flop manually:
        let q = n.add_gate_fn("u_ff", CellFunction::Dff, &[nq, ck]).unwrap();
        // Connect q to loopback via buffer (loopback needs a driver).
        // Instead: rebuild using q directly.
        let _ = (q, loopback);
        let mut n = Netlist::new("toggle2");
        let ck = n.add_input("ck");
        // Temporarily drive INV from a placeholder net, then fix up: simplest
        // is INV(q) where q is the flop output; create flop first with a
        // dummy D, not supported -> build with two-phase trick:
        // d = INV(q); q = DFF(d). Create INV reading a fresh net, then make
        // the flop output *be* that net by adding flop whose output feeds it.
        // The public API always creates fresh outputs, so model the loop as:
        // q -> inv -> d -> flop -> q2, and check q2 = !q for given state.
        let q = n.add_input("q_external"); // stand-in for present state
        let d = n.add_gate_fn("u_inv", CellFunction::Inv, &[q]).unwrap();
        let q2 = n.add_gate_fn("u_ff", CellFunction::Dff, &[d, ck]).unwrap();
        let _ = q2;
        n.add_output("dummy", d);
        let (_, next) = n.simulate(&[true, false], &[false]);
        assert_eq!(next, vec![true], "flop captures D = !q = 1");
        let (_, next) = n.simulate(&[true, true], &[true]);
        assert_eq!(next, vec![false]);
    }

    #[test]
    fn topo_detects_cycles() {
        let mut n = Netlist::new("cyc");
        let a = n.add_input("a");
        // u1 reads u2's output; u2 reads u1's output -> cycle.
        let placeholder = n.add_net("ph");
        let o1 = n.add_gate_fn("u1", CellFunction::And(2), &[a, placeholder]).unwrap();
        let o2 = n.add_gate_fn("u2", CellFunction::Inv, &[o1]).unwrap();
        // Force the cycle by making u1's second input the output of u2:
        // splice manually.
        let u1 = InstId(0);
        let n_mut = &mut n;
        n_mut.instances[u1.index()].inputs[1] = o2;
        n_mut.nets[o2.index()].sinks.push((u1, 1));
        assert!(matches!(n.topo_order(), Err(NetlistError::CombinationalCycle(_))));
        assert!(n.validate().is_err());
    }

    #[test]
    fn depth_of_chain() {
        let mut n = Netlist::new("chain");
        let mut x = n.add_input("a");
        for i in 0..10 {
            x = n.add_gate_fn(format!("u{i}"), CellFunction::Inv, &[x]).unwrap();
        }
        n.add_output("y", x);
        assert_eq!(n.logic_depth(), 10);
    }

    #[test]
    fn rebind_preserves_function() {
        let n = full_adder();
        let p = n.rebind(Library::controlled_polarity()).unwrap();
        for pat in 0u32..8 {
            let ins = [(pat & 1) != 0, (pat & 2) != 0, (pat & 4) != 0];
            assert_eq!(n.simulate(&ins, &[]).0, p.simulate(&ins, &[]).0);
        }
        // Rebinding to the XOR-less 2006 library must fail.
        assert!(n.rebind(Library::nand_inv_2006()).is_err());
    }

    #[test]
    fn area_and_leakage_accumulate() {
        let n = full_adder();
        let lib = n.library();
        let expect: f64 = n.instances().map(|(_, i)| lib.cell(i.cell()).area_um2).sum();
        assert!((n.area_um2() - expect).abs() < 1e-12);
        assert!(n.leakage_nw() > 0.0);
    }

    #[test]
    fn blocks_assign_and_list() {
        let mut n = full_adder();
        n.assign_block(InstId(0), "blk_a");
        n.assign_block(InstId(1), "blk_a");
        n.assign_block(InstId(2), "blk_b");
        assert_eq!(n.block_names(), &["blk_a".to_string(), "blk_b".to_string()]);
        assert_eq!(n.instance(InstId(0)).block(), Some(0));
        assert_eq!(n.instance(InstId(2)).block(), Some(1));
    }

    #[test]
    fn flops_listed_in_order() {
        let mut n = Netlist::new("seq");
        let ck = n.add_input("ck");
        let d = n.add_input("d");
        let q1 = n.add_gate_fn("ff1", CellFunction::Dff, &[d, ck]).unwrap();
        let q2 = n.add_gate_fn("ff2", CellFunction::Dff, &[q1, ck]).unwrap();
        n.add_output("q", q2);
        assert_eq!(n.flops().len(), 2);
        // Two-stage shift register: state [a, b] -> [d, a].
        let (_, next) = n.simulate(&[false, true], &[false, false]);
        assert_eq!(next, vec![true, false]);
    }
}
