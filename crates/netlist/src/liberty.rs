//! Standard-cell library exchange formats.
//!
//! Rossi's position statement recalls the cost of format dualism: *"the same
//! happened with UPF and CPF... We cannot also forget the approach used by
//! CCS-ECSM for library description: as a technology provider, we had to
//! duplicate the effort for our IP deliveries."* This module implements two
//! deliberately different library formats over the same characterization
//! data — a brace-structured `liberty`-like dialect and a line-oriented
//! `clf` dialect — plus lossless converters, so the duplication (and its
//! remedy: one data model, many syntaxes) can be demonstrated and tested.

use crate::cell::{CellDef, CellFunction, Library};
use std::sync::Arc;

/// Errors from library parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseLibError {
    /// A structural/grammar problem at a line.
    Syntax { line: usize, message: String },
    /// An unknown logic-function token.
    UnknownFunction { line: usize, token: String },
    /// A numeric attribute failed to parse.
    BadNumber { line: usize, attribute: String },
    /// A required attribute was missing from a cell.
    MissingAttribute { cell: String, attribute: &'static str },
}

impl std::fmt::Display for ParseLibError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseLibError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseLibError::UnknownFunction { line, token } => {
                write!(f, "line {line}: unknown function `{token}`")
            }
            ParseLibError::BadNumber { line, attribute } => {
                write!(f, "line {line}: bad number for `{attribute}`")
            }
            ParseLibError::MissingAttribute { cell, attribute } => {
                write!(f, "cell `{cell}` missing `{attribute}`")
            }
        }
    }
}

impl std::error::Error for ParseLibError {}

/// Serializes a [`CellFunction`] to its exchange token.
pub fn function_token(f: CellFunction) -> String {
    match f {
        CellFunction::Const0 => "tie0".into(),
        CellFunction::Const1 => "tie1".into(),
        CellFunction::Buf => "buf".into(),
        CellFunction::Inv => "inv".into(),
        CellFunction::And(n) => format!("and{n}"),
        CellFunction::Nand(n) => format!("nand{n}"),
        CellFunction::Or(n) => format!("or{n}"),
        CellFunction::Nor(n) => format!("nor{n}"),
        CellFunction::Xor2 => "xor2".into(),
        CellFunction::Xnor2 => "xnor2".into(),
        CellFunction::Aoi21 => "aoi21".into(),
        CellFunction::Oai21 => "oai21".into(),
        CellFunction::Mux2 => "mux2".into(),
        CellFunction::Maj3 => "maj3".into(),
        CellFunction::Dff => "dff".into(),
        CellFunction::ScanDff => "sdff".into(),
        CellFunction::ClockGate => "clkgate".into(),
        CellFunction::LevelShifter => "lvlshift".into(),
        CellFunction::Isolation => "iso".into(),
        CellFunction::Decap => "decap".into(),
    }
}

/// Parses an exchange token back to a [`CellFunction`].
pub fn parse_function_token(token: &str) -> Option<CellFunction> {
    Some(match token {
        "tie0" => CellFunction::Const0,
        "tie1" => CellFunction::Const1,
        "buf" => CellFunction::Buf,
        "inv" => CellFunction::Inv,
        "xor2" => CellFunction::Xor2,
        "xnor2" => CellFunction::Xnor2,
        "aoi21" => CellFunction::Aoi21,
        "oai21" => CellFunction::Oai21,
        "mux2" => CellFunction::Mux2,
        "maj3" => CellFunction::Maj3,
        "dff" => CellFunction::Dff,
        "sdff" => CellFunction::ScanDff,
        "clkgate" => CellFunction::ClockGate,
        "lvlshift" => CellFunction::LevelShifter,
        "iso" => CellFunction::Isolation,
        "decap" => CellFunction::Decap,
        other => {
            let (base, n) = other.split_at(other.len().checked_sub(1)?);
            let n: u8 = n.parse().ok()?;
            if !(2..=4).contains(&n) {
                return None;
            }
            match base {
                "and" => CellFunction::And(n),
                "nand" => CellFunction::Nand(n),
                "or" => CellFunction::Or(n),
                "nor" => CellFunction::Nor(n),
                _ => return None,
            }
        }
    })
}

/// Writes the brace-structured `liberty`-like dialect.
///
/// # Examples
///
/// ```
/// use eda_netlist::{liberty, Library};
/// let text = liberty::write_liberty(&Library::generic());
/// assert!(text.contains("cell (NAND2_X1)"));
/// ```
pub fn write_liberty(lib: &Library) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "library ({}) {{", lib.name());
    for (_, def) in lib.iter() {
        let _ = writeln!(out, "  cell ({}) {{", def.name);
        let _ = writeln!(out, "    function : \"{}\";", function_token(def.function));
        let _ = writeln!(out, "    area : {};", def.area_um2);
        let _ = writeln!(out, "    delay : {};", def.delay_ps);
        let _ = writeln!(out, "    drive : {};", def.drive_ps_per_ff);
        let _ = writeln!(out, "    cap : {};", def.input_cap_ff);
        let _ = writeln!(out, "    leakage : {};", def.leakage_nw);
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
    out
}

/// Parses the `liberty`-like dialect.
///
/// # Errors
///
/// Returns a [`ParseLibError`] describing the first problem found.
pub fn parse_liberty(text: &str) -> Result<Arc<Library>, ParseLibError> {
    let mut lib: Option<Library> = None;
    let mut cell_name: Option<String> = None;
    let mut attrs: Vec<(String, String, usize)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let stmt = raw.split("/*").next().unwrap_or("").trim();
        if stmt.is_empty() {
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("library") {
            let name = rest
                .trim()
                .strip_prefix('(')
                .and_then(|s| s.split(')').next())
                .ok_or(ParseLibError::Syntax { line, message: "expected `library (name) {`".into() })?;
            lib = Some(Library::new(name.trim()));
        } else if let Some(rest) = stmt.strip_prefix("cell") {
            let name = rest
                .trim()
                .strip_prefix('(')
                .and_then(|s| s.split(')').next())
                .ok_or(ParseLibError::Syntax { line, message: "expected `cell (name) {`".into() })?;
            cell_name = Some(name.trim().to_string());
            attrs.clear();
        } else if stmt == "}" {
            if let Some(name) = cell_name.take() {
                let def = build_cell(name, &attrs)?;
                lib.as_mut()
                    .ok_or(ParseLibError::Syntax { line, message: "cell outside library".into() })?
                    .add_cell(def);
            }
            // else: closing the library block.
        } else if let Some((k, v)) = stmt.split_once(':') {
            if cell_name.is_none() {
                return Err(ParseLibError::Syntax {
                    line,
                    message: format!("attribute `{}` outside a cell", k.trim()),
                });
            }
            let v = v.trim().trim_end_matches(';').trim().trim_matches('"');
            attrs.push((k.trim().to_string(), v.to_string(), line));
        } else {
            return Err(ParseLibError::Syntax { line, message: format!("unrecognized `{stmt}`") });
        }
    }
    lib.map(Arc::new)
        .ok_or(ParseLibError::Syntax { line: 0, message: "no library block found".into() })
}

/// Writes the line-oriented `clf` dialect.
///
/// # Examples
///
/// ```
/// use eda_netlist::{liberty, Library};
/// let text = liberty::write_clf(&Library::generic());
/// assert!(text.starts_with("LIBRARY generic"));
/// ```
pub fn write_clf(lib: &Library) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "LIBRARY {}", lib.name());
    for (_, def) in lib.iter() {
        let _ = writeln!(
            out,
            "CELL {} FUNC={} AREA={} DELAY={} DRIVE={} CAP={} LEAK={}",
            def.name,
            function_token(def.function),
            def.area_um2,
            def.delay_ps,
            def.drive_ps_per_ff,
            def.input_cap_ff,
            def.leakage_nw
        );
    }
    let _ = writeln!(out, "END");
    out
}

/// Parses the `clf` dialect.
///
/// # Errors
///
/// Returns a [`ParseLibError`] describing the first problem found.
pub fn parse_clf(text: &str) -> Result<Arc<Library>, ParseLibError> {
    let mut lib: Option<Library> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let stmt = raw.split('#').next().unwrap_or("").trim();
        if stmt.is_empty() {
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("LIBRARY ") {
            lib = Some(Library::new(rest.trim()));
        } else if stmt == "END" {
            break;
        } else if let Some(rest) = stmt.strip_prefix("CELL ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or(ParseLibError::Syntax { line, message: "CELL without a name".into() })?
                .to_string();
            let mut attrs: Vec<(String, String, usize)> = Vec::new();
            for kv in parts {
                let (k, v) = kv.split_once('=').ok_or(ParseLibError::Syntax {
                    line,
                    message: format!("expected KEY=VALUE, got `{kv}`"),
                })?;
                // Normalize CLF keys onto the shared attribute names.
                let key = match k {
                    "FUNC" => "function",
                    "AREA" => "area",
                    "DELAY" => "delay",
                    "DRIVE" => "drive",
                    "CAP" => "cap",
                    "LEAK" => "leakage",
                    other => {
                        return Err(ParseLibError::Syntax {
                            line,
                            message: format!("unknown attribute `{other}`"),
                        })
                    }
                };
                attrs.push((key.to_string(), v.to_string(), line));
            }
            let def = build_cell(name, &attrs)?;
            lib.as_mut()
                .ok_or(ParseLibError::Syntax { line, message: "CELL before LIBRARY".into() })?
                .add_cell(def);
        } else {
            return Err(ParseLibError::Syntax { line, message: format!("unrecognized `{stmt}`") });
        }
    }
    lib.map(Arc::new)
        .ok_or(ParseLibError::Syntax { line: 0, message: "no LIBRARY header found".into() })
}

/// Shared attribute-set → [`CellDef`] assembly for both dialects.
fn build_cell(name: String, attrs: &[(String, String, usize)]) -> Result<CellDef, ParseLibError> {
    let get = |key: &'static str| -> Option<(&str, usize)> {
        attrs.iter().find(|(k, _, _)| k == key).map(|(_, v, l)| (v.as_str(), *l))
    };
    let num = |key: &'static str| -> Result<f64, ParseLibError> {
        let (v, line) =
            get(key).ok_or(ParseLibError::MissingAttribute { cell: name.clone(), attribute: key })?;
        v.parse().map_err(|_| ParseLibError::BadNumber { line, attribute: key.into() })
    };
    let (ftok, fline) = get("function")
        .ok_or(ParseLibError::MissingAttribute { cell: name.clone(), attribute: "function" })?;
    let function = parse_function_token(ftok)
        .ok_or(ParseLibError::UnknownFunction { line: fline, token: ftok.to_string() })?;
    let area_um2 = num("area")?;
    let delay_ps = num("delay")?;
    let drive_ps_per_ff = num("drive")?;
    let input_cap_ff = num("cap")?;
    let leakage_nw = num("leakage")?;
    Ok(CellDef { name, function, area_um2, delay_ps, drive_ps_per_ff, input_cap_ff, leakage_nw })
}

/// Converts between the two dialects losslessly (Rossi's point: one data
/// model should serve every syntax).
pub fn liberty_to_clf(text: &str) -> Result<String, ParseLibError> {
    Ok(write_clf(&parse_liberty(text)?.as_ref().clone()))
}

/// Converts the `clf` dialect to the `liberty`-like dialect.
///
/// # Errors
///
/// Propagates parse errors from the input.
pub fn clf_to_liberty(text: &str) -> Result<String, ParseLibError> {
    Ok(write_liberty(&parse_clf(text)?.as_ref().clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn libraries_equal(a: &Library, b: &Library) -> bool {
        if a.name() != b.name() || a.len() != b.len() {
            return false;
        }
        a.iter().zip(b.iter()).all(|((_, x), (_, y))| x == y)
    }

    #[test]
    fn liberty_roundtrip_all_standard_libraries() {
        for lib in [Library::generic(), Library::nand_inv_2006(), Library::controlled_polarity()] {
            let text = write_liberty(&lib);
            let parsed = parse_liberty(&text).unwrap();
            assert!(libraries_equal(&lib, &parsed), "{} round trip", lib.name());
        }
    }

    #[test]
    fn clf_roundtrip_all_standard_libraries() {
        for lib in [Library::generic(), Library::nand_inv_2006(), Library::controlled_polarity()] {
            let text = write_clf(&lib);
            let parsed = parse_clf(&text).unwrap();
            assert!(libraries_equal(&lib, &parsed), "{} round trip", lib.name());
        }
    }

    #[test]
    fn cross_format_conversion_is_lossless() {
        let lib = Library::generic();
        let liberty = write_liberty(&lib);
        let clf = liberty_to_clf(&liberty).unwrap();
        let back = clf_to_liberty(&clf).unwrap();
        assert_eq!(liberty, back, "liberty -> clf -> liberty is the identity");
    }

    #[test]
    fn function_tokens_roundtrip() {
        let fns = [
            CellFunction::Const0,
            CellFunction::Inv,
            CellFunction::And(3),
            CellFunction::Nand(4),
            CellFunction::Nor(2),
            CellFunction::Xor2,
            CellFunction::Mux2,
            CellFunction::ScanDff,
            CellFunction::Decap,
        ];
        for f in fns {
            assert_eq!(parse_function_token(&function_token(f)), Some(f), "{f:?}");
        }
        assert_eq!(parse_function_token("nand9"), None);
        assert_eq!(parse_function_token("frobnicate"), None);
        assert_eq!(parse_function_token(""), None);
    }

    #[test]
    fn parse_errors_are_located() {
        let missing = "library (x) {\n  cell (A) {\n    function : \"inv\";\n  }\n}\n";
        assert!(matches!(
            parse_liberty(missing),
            Err(ParseLibError::MissingAttribute { attribute: "area", .. })
        ));
        let bad_num = "LIBRARY x\nCELL A FUNC=inv AREA=abc DELAY=1 DRIVE=1 CAP=1 LEAK=1\nEND\n";
        assert!(matches!(parse_clf(bad_num), Err(ParseLibError::BadNumber { line: 2, .. })));
        let bad_fn = "LIBRARY x\nCELL A FUNC=zap2 AREA=1 DELAY=1 DRIVE=1 CAP=1 LEAK=1\nEND\n";
        assert!(matches!(parse_clf(bad_fn), Err(ParseLibError::UnknownFunction { .. })));
        assert!(parse_liberty("").is_err());
        assert!(parse_clf("CELL A FUNC=inv\n").is_err());
    }

    #[test]
    fn parsed_library_drives_a_netlist() {
        use crate::netlist::Netlist;
        let lib = parse_clf(&write_clf(&Library::generic())).unwrap();
        let mut n = Netlist::with_library("t", lib);
        let a = n.add_input("a");
        let b = n.add_input("b");
        let y = n.add_gate_fn("u", CellFunction::Nand(2), &[a, b]).unwrap();
        n.add_output("y", y);
        n.validate().unwrap();
        let (outs, _) = n.simulate(&[true, true], &[]);
        assert_eq!(outs, vec![false]);
    }

    #[test]
    fn comments_tolerated() {
        let text = "LIBRARY x  # my lib\n# full-line comment\nCELL A FUNC=inv AREA=1 DELAY=1 DRIVE=1 CAP=1 LEAK=1\nEND\n";
        let lib = parse_clf(text).unwrap();
        assert_eq!(lib.len(), 1);
    }
}
