//! Netlist structural statistics.

use crate::cell::CellFunction;
use crate::netlist::Netlist;
use std::collections::BTreeMap;

/// Summary statistics of a netlist's structure.
///
/// # Examples
///
/// ```
/// use eda_netlist::{generate, NetlistStats};
/// # fn main() -> Result<(), eda_netlist::NetlistError> {
/// let n = generate::ripple_carry_adder(8)?;
/// let s = NetlistStats::of(&n);
/// assert_eq!(s.flops, 0);
/// assert!(s.avg_fanout > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistStats {
    /// Total instances.
    pub instances: usize,
    /// Total nets.
    pub nets: usize,
    /// Sequential (flip-flop) instances.
    pub flops: usize,
    /// Combinational instances.
    pub combinational: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Total cell area in µm².
    pub area_um2: f64,
    /// Mean net fanout.
    pub avg_fanout: f64,
    /// Maximum net fanout.
    pub max_fanout: usize,
    /// Longest combinational path length in gates.
    pub logic_depth: usize,
    /// Instance count per cell name.
    pub cell_histogram: BTreeMap<String, usize>,
}

impl NetlistStats {
    /// Computes statistics for a netlist.
    pub fn of(netlist: &Netlist) -> NetlistStats {
        let lib = netlist.library();
        let mut flops = 0;
        let mut comb = 0;
        let mut hist: BTreeMap<String, usize> = BTreeMap::new();
        for (_, inst) in netlist.instances() {
            let def = lib.cell(inst.cell());
            *hist.entry(def.name.clone()).or_insert(0) += 1;
            match def.function {
                f if f.is_sequential() => flops += 1,
                CellFunction::Decap => {}
                _ => comb += 1,
            }
        }
        let fanouts: Vec<usize> = netlist.nets().map(|(_, n)| n.fanout()).collect();
        let total: usize = fanouts.iter().sum();
        NetlistStats {
            instances: netlist.num_instances(),
            nets: netlist.num_nets(),
            flops,
            combinational: comb,
            inputs: netlist.primary_inputs().len(),
            outputs: netlist.primary_outputs().len(),
            area_um2: netlist.area_um2(),
            avg_fanout: if fanouts.is_empty() { 0.0 } else { total as f64 / fanouts.len() as f64 },
            max_fanout: fanouts.iter().copied().max().unwrap_or(0),
            logic_depth: netlist.logic_depth(),
            cell_histogram: hist,
        }
    }
}

impl std::fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "instances:   {}", self.instances)?;
        writeln!(f, "  comb/seq:  {}/{}", self.combinational, self.flops)?;
        writeln!(f, "nets:        {}", self.nets)?;
        writeln!(f, "ports:       {} in / {} out", self.inputs, self.outputs)?;
        writeln!(f, "area:        {:.1} um^2", self.area_um2)?;
        writeln!(f, "fanout:      avg {:.2}, max {}", self.avg_fanout, self.max_fanout)?;
        write!(f, "logic depth: {}", self.logic_depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn stats_count_correctly() {
        let n = generate::switch_fabric(4, 2).unwrap();
        let s = NetlistStats::of(&n);
        assert_eq!(s.instances, n.num_instances());
        assert_eq!(s.flops, 8, "one flop per (port, bit)");
        assert_eq!(s.combinational + s.flops, s.instances);
        assert!(s.cell_histogram.values().sum::<usize>() == s.instances);
        assert!(s.max_fanout >= 4);
    }

    #[test]
    fn display_is_nonempty() {
        let n = generate::parity_tree(8).unwrap();
        let s = NetlistStats::of(&n);
        let text = s.to_string();
        assert!(text.contains("instances"));
        assert!(text.contains("logic depth"));
    }

    #[test]
    fn depth_of_parity_tree_is_logarithmic() {
        let n = generate::parity_tree(32).unwrap();
        let s = NetlistStats::of(&n);
        assert_eq!(s.logic_depth, 5, "32-leaf XOR tree has depth log2(32)");
    }
}
