//! Standard-cell modeling: logic functions, cell definitions, and libraries.
//!
//! Three libraries ship with the crate, matching the comparisons the panel
//! makes:
//!
//! * [`Library::generic`] — a modern, rich library (the "advanced 2016" flow
//!   target);
//! * [`Library::nand_inv_2006`] — NAND2/INV/DFF only, the target of the
//!   deliberately naive decade-old baseline mapper;
//! * [`Library::controlled_polarity`] — De Micheli's functionality-enhanced
//!   devices (SiNW/CNT controlled-polarity transistors), where XOR/XNOR and
//!   majority come almost for free.

use std::collections::HashMap;
use std::sync::Arc;

/// Index of a cell definition inside a [`Library`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub(crate) u32);

impl CellId {
    /// Position of the cell in [`Library::cells`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The boolean/sequential function a cell implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellFunction {
    /// Constant logic 0 (tie-low).
    Const0,
    /// Constant logic 1 (tie-high).
    Const1,
    /// Non-inverting buffer.
    Buf,
    /// Inverter.
    Inv,
    /// N-input AND, 2 ≤ N ≤ 4.
    And(u8),
    /// N-input NAND, 2 ≤ N ≤ 4.
    Nand(u8),
    /// N-input OR, 2 ≤ N ≤ 4.
    Or(u8),
    /// N-input NOR, 2 ≤ N ≤ 4.
    Nor(u8),
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// AND-OR-invert: `!((A & B) | C)`.
    Aoi21,
    /// OR-AND-invert: `!((A | B) & C)`.
    Oai21,
    /// 2:1 multiplexer: `S ? B : A` with inputs `[A, B, S]`.
    Mux2,
    /// 3-input majority.
    Maj3,
    /// D flip-flop, inputs `[D, CK]`, output `Q`.
    Dff,
    /// Scan D flip-flop, inputs `[D, SI, SE, CK]`, output `Q`.
    ScanDff,
    /// Integrated clock gate, inputs `[CK, EN]`, output gated clock.
    ClockGate,
    /// Level shifter between voltage domains (logically a buffer).
    LevelShifter,
    /// Isolation cell, inputs `[A, EN]`: passes `A` when `EN` is high,
    /// clamps to 0 otherwise.
    Isolation,
    /// Decoupling capacitor; no logic function, physical-only.
    Decap,
}

impl CellFunction {
    /// Number of input pins.
    pub fn num_inputs(self) -> usize {
        match self {
            CellFunction::Const0 | CellFunction::Const1 | CellFunction::Decap => 0,
            CellFunction::Buf | CellFunction::Inv | CellFunction::LevelShifter => 1,
            CellFunction::And(n)
            | CellFunction::Nand(n)
            | CellFunction::Or(n)
            | CellFunction::Nor(n) => n as usize,
            CellFunction::Xor2
            | CellFunction::Xnor2
            | CellFunction::Dff
            | CellFunction::ClockGate
            | CellFunction::Isolation => 2,
            CellFunction::Aoi21 | CellFunction::Oai21 | CellFunction::Mux2 | CellFunction::Maj3 => 3,
            CellFunction::ScanDff => 4,
        }
    }

    /// Whether the cell stores state (flip-flops).
    pub fn is_sequential(self) -> bool {
        matches!(self, CellFunction::Dff | CellFunction::ScanDff)
    }

    /// Whether the cell is physical-only (no logic output of interest).
    pub fn is_physical_only(self) -> bool {
        matches!(self, CellFunction::Decap)
    }

    /// Conventional pin names, inputs in order.
    pub fn input_names(self) -> &'static [&'static str] {
        match self {
            CellFunction::Const0 | CellFunction::Const1 | CellFunction::Decap => &[],
            CellFunction::Buf | CellFunction::Inv | CellFunction::LevelShifter => &["A"],
            CellFunction::And(2) | CellFunction::Nand(2) | CellFunction::Or(2) | CellFunction::Nor(2) => &["A", "B"],
            CellFunction::And(3) | CellFunction::Nand(3) | CellFunction::Or(3) | CellFunction::Nor(3) => &["A", "B", "C"],
            CellFunction::And(_) | CellFunction::Nand(_) | CellFunction::Or(_) | CellFunction::Nor(_) => &["A", "B", "C", "D"],
            CellFunction::Xor2 | CellFunction::Xnor2 => &["A", "B"],
            CellFunction::Aoi21 | CellFunction::Oai21 => &["A", "B", "C"],
            CellFunction::Mux2 => &["A", "B", "S"],
            CellFunction::Maj3 => &["A", "B", "C"],
            CellFunction::Dff => &["D", "CK"],
            CellFunction::ScanDff => &["D", "SI", "SE", "CK"],
            CellFunction::ClockGate => &["CK", "EN"],
            CellFunction::Isolation => &["A", "EN"],
        }
    }

    /// Conventional output pin name.
    pub fn output_name(self) -> &'static str {
        match self {
            CellFunction::Dff | CellFunction::ScanDff => "Q",
            CellFunction::ClockGate => "GCK",
            _ => "Y",
        }
    }

    /// Evaluates the combinational function on boolean inputs.
    ///
    /// For sequential cells this returns the value captured at the next clock
    /// edge (i.e. `D`, or the scan-mux output for a scan flop). For
    /// [`CellFunction::Decap`] the result is always `false`.
    ///
    /// # Panics
    ///
    /// Panics if `ins.len() != self.num_inputs()`.
    pub fn eval(self, ins: &[bool]) -> bool {
        assert_eq!(ins.len(), self.num_inputs(), "arity mismatch for {self:?}");
        match self {
            CellFunction::Const0 | CellFunction::Decap => false,
            CellFunction::Const1 => true,
            CellFunction::Buf | CellFunction::LevelShifter => ins[0],
            CellFunction::Inv => !ins[0],
            CellFunction::And(_) => ins.iter().all(|&b| b),
            CellFunction::Nand(_) => !ins.iter().all(|&b| b),
            CellFunction::Or(_) => ins.iter().any(|&b| b),
            CellFunction::Nor(_) => !ins.iter().any(|&b| b),
            CellFunction::Xor2 => ins[0] ^ ins[1],
            CellFunction::Xnor2 => !(ins[0] ^ ins[1]),
            CellFunction::Aoi21 => !((ins[0] & ins[1]) | ins[2]),
            CellFunction::Oai21 => !((ins[0] | ins[1]) & ins[2]),
            CellFunction::Mux2 => {
                if ins[2] {
                    ins[1]
                } else {
                    ins[0]
                }
            }
            CellFunction::Maj3 => (ins[0] & ins[1]) | (ins[1] & ins[2]) | (ins[0] & ins[2]),
            CellFunction::Dff => ins[0],
            CellFunction::ScanDff => {
                if ins[2] {
                    ins[1]
                } else {
                    ins[0]
                }
            }
            CellFunction::ClockGate => ins[0] & ins[1],
            CellFunction::Isolation => ins[0] & ins[1],
        }
    }

    /// Bit-parallel version of [`CellFunction::eval`]: evaluates 64 input
    /// patterns at once (one per bit lane).
    ///
    /// # Panics
    ///
    /// Panics if `ins.len() != self.num_inputs()`.
    pub fn eval64(self, ins: &[u64]) -> u64 {
        assert_eq!(ins.len(), self.num_inputs(), "arity mismatch for {self:?}");
        match self {
            CellFunction::Const0 | CellFunction::Decap => 0,
            CellFunction::Const1 => !0,
            CellFunction::Buf | CellFunction::LevelShifter => ins[0],
            CellFunction::Inv => !ins[0],
            CellFunction::And(_) => ins.iter().fold(!0u64, |a, &b| a & b),
            CellFunction::Nand(_) => !ins.iter().fold(!0u64, |a, &b| a & b),
            CellFunction::Or(_) => ins.iter().fold(0u64, |a, &b| a | b),
            CellFunction::Nor(_) => !ins.iter().fold(0u64, |a, &b| a | b),
            CellFunction::Xor2 => ins[0] ^ ins[1],
            CellFunction::Xnor2 => !(ins[0] ^ ins[1]),
            CellFunction::Aoi21 => !((ins[0] & ins[1]) | ins[2]),
            CellFunction::Oai21 => !((ins[0] | ins[1]) & ins[2]),
            CellFunction::Mux2 => (ins[1] & ins[2]) | (ins[0] & !ins[2]),
            CellFunction::Maj3 => (ins[0] & ins[1]) | (ins[1] & ins[2]) | (ins[0] & ins[2]),
            CellFunction::Dff => ins[0],
            CellFunction::ScanDff => (ins[1] & ins[2]) | (ins[0] & !ins[2]),
            CellFunction::ClockGate | CellFunction::Isolation => ins[0] & ins[1],
        }
    }
}

/// One standard cell: its function plus physical/electrical characterization
/// at the library's reference node.
#[derive(Debug, Clone, PartialEq)]
pub struct CellDef {
    /// Library cell name, e.g. `"NAND2_X1"`.
    pub name: String,
    /// Logic function.
    pub function: CellFunction,
    /// Placement area in square micrometers at the reference node.
    pub area_um2: f64,
    /// Intrinsic delay in picoseconds.
    pub delay_ps: f64,
    /// Load-dependent delay slope in picoseconds per femtofarad.
    pub drive_ps_per_ff: f64,
    /// Capacitance of each input pin in femtofarads.
    pub input_cap_ff: f64,
    /// Leakage power in nanowatts.
    pub leakage_nw: f64,
}

/// A collection of standard cells indexed by [`CellId`] and by name.
///
/// # Examples
///
/// ```
/// use eda_netlist::{CellFunction, Library};
/// let lib = Library::generic();
/// let nand = lib.find("NAND2_X1").expect("generic library has NAND2");
/// assert_eq!(lib.cell(nand).function, CellFunction::Nand(2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Library {
    name: String,
    cells: Vec<CellDef>,
    by_name: HashMap<String, CellId>,
}

impl Library {
    /// Creates an empty library.
    pub fn new(name: impl Into<String>) -> Library {
        Library { name: name.into(), cells: Vec::new(), by_name: HashMap::new() }
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a cell and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a cell with the same name already exists.
    pub fn add_cell(&mut self, def: CellDef) -> CellId {
        assert!(
            !self.by_name.contains_key(&def.name),
            "duplicate cell name `{}` in library `{}`",
            def.name,
            self.name
        );
        let id = CellId(self.cells.len() as u32);
        self.by_name.insert(def.name.clone(), id);
        self.cells.push(def);
        id
    }

    /// Looks a cell up by id.
    pub fn cell(&self, id: CellId) -> &CellDef {
        &self.cells[id.index()]
    }

    /// Finds a cell by name.
    pub fn find(&self, name: &str) -> Option<CellId> {
        self.by_name.get(name).copied()
    }

    /// Finds the first (cheapest-by-construction) cell with a given function.
    pub fn find_function(&self, f: CellFunction) -> Option<CellId> {
        self.cells
            .iter()
            .position(|c| c.function == f)
            .map(|i| CellId(i as u32))
    }

    /// All cells with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, &CellDef)> {
        self.cells.iter().enumerate().map(|(i, c)| (CellId(i as u32), c))
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the library has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    fn std(name: &str, function: CellFunction, area: f64, delay: f64, leak: f64) -> CellDef {
        CellDef {
            name: name.to_string(),
            function,
            area_um2: area,
            delay_ps: delay,
            drive_ps_per_ff: 6.0,
            input_cap_ff: 1.0,
            leakage_nw: leak,
        }
    }

    /// The full modern library used by the advanced flow.
    pub fn generic() -> Arc<Library> {
        let mut l = Library::new("generic");
        for def in [
            Library::std("TIE0_X1", CellFunction::Const0, 0.5, 0.0, 0.1),
            Library::std("TIE1_X1", CellFunction::Const1, 0.5, 0.0, 0.1),
            Library::std("INV_X1", CellFunction::Inv, 1.0, 8.0, 1.0),
            Library::std("BUF_X1", CellFunction::Buf, 1.3, 12.0, 1.2),
            Library::std("NAND2_X1", CellFunction::Nand(2), 1.2, 10.0, 1.4),
            Library::std("NAND3_X1", CellFunction::Nand(3), 1.6, 13.0, 1.8),
            Library::std("NAND4_X1", CellFunction::Nand(4), 2.0, 16.0, 2.2),
            Library::std("NOR2_X1", CellFunction::Nor(2), 1.2, 11.0, 1.4),
            Library::std("NOR3_X1", CellFunction::Nor(3), 1.6, 15.0, 1.8),
            Library::std("NOR4_X1", CellFunction::Nor(4), 2.0, 18.0, 2.2),
            Library::std("AND2_X1", CellFunction::And(2), 1.5, 14.0, 1.6),
            Library::std("AND3_X1", CellFunction::And(3), 1.9, 17.0, 2.0),
            Library::std("AND4_X1", CellFunction::And(4), 2.3, 20.0, 2.4),
            Library::std("OR2_X1", CellFunction::Or(2), 1.5, 15.0, 1.6),
            Library::std("OR3_X1", CellFunction::Or(3), 1.9, 18.0, 2.0),
            Library::std("OR4_X1", CellFunction::Or(4), 2.3, 21.0, 2.4),
            Library::std("XOR2_X1", CellFunction::Xor2, 2.6, 18.0, 2.6),
            Library::std("XNOR2_X1", CellFunction::Xnor2, 2.6, 18.0, 2.6),
            Library::std("AOI21_X1", CellFunction::Aoi21, 1.8, 14.0, 1.9),
            Library::std("OAI21_X1", CellFunction::Oai21, 1.8, 14.0, 1.9),
            Library::std("MUX2_X1", CellFunction::Mux2, 2.2, 16.0, 2.3),
            Library::std("MAJ3_X1", CellFunction::Maj3, 2.8, 20.0, 2.8),
            Library::std("DFF_X1", CellFunction::Dff, 4.5, 35.0, 4.0),
            Library::std("SDFF_X1", CellFunction::ScanDff, 5.5, 38.0, 4.6),
            Library::std("CLKGATE_X1", CellFunction::ClockGate, 3.0, 20.0, 2.0),
            Library::std("LVLSHIFT_X1", CellFunction::LevelShifter, 2.5, 22.0, 1.5),
            Library::std("ISO_X1", CellFunction::Isolation, 1.8, 12.0, 1.2),
            Library::std("DECAP_X4", CellFunction::Decap, 4.0, 0.0, 0.4),
        ] {
            l.add_cell(def);
        }
        Arc::new(l)
    }

    /// The impoverished NAND2/INV/DFF library targeted by the 2006-era
    /// baseline mapper.
    pub fn nand_inv_2006() -> Arc<Library> {
        let mut l = Library::new("nand_inv_2006");
        for def in [
            Library::std("TIE0_X1", CellFunction::Const0, 0.5, 0.0, 0.1),
            Library::std("TIE1_X1", CellFunction::Const1, 0.5, 0.0, 0.1),
            Library::std("INV_X1", CellFunction::Inv, 1.0, 8.0, 1.0),
            Library::std("BUF_X1", CellFunction::Buf, 1.3, 12.0, 1.2),
            Library::std("NAND2_X1", CellFunction::Nand(2), 1.2, 10.0, 1.4),
            Library::std("DFF_X1", CellFunction::Dff, 4.5, 35.0, 4.0),
            Library::std("SDFF_X1", CellFunction::ScanDff, 5.5, 38.0, 4.6),
        ] {
            l.add_cell(def);
        }
        Arc::new(l)
    }

    /// A library modeling De Micheli's controlled-polarity SiNW/CNT devices:
    /// XOR/XNOR/MAJ are first-class, compact primitives instead of expensive
    /// CMOS compositions.
    pub fn controlled_polarity() -> Arc<Library> {
        let mut l = Library::new("controlled_polarity");
        for def in [
            Library::std("TIE0_P", CellFunction::Const0, 0.5, 0.0, 0.1),
            Library::std("TIE1_P", CellFunction::Const1, 0.5, 0.0, 0.1),
            Library::std("INV_P", CellFunction::Inv, 1.0, 8.0, 1.0),
            Library::std("BUF_P", CellFunction::Buf, 1.3, 12.0, 1.2),
            Library::std("NAND2_P", CellFunction::Nand(2), 1.2, 10.0, 1.4),
            Library::std("NOR2_P", CellFunction::Nor(2), 1.2, 11.0, 1.4),
            // Controlled-polarity pairs realize XOR in a single device pair.
            Library::std("XOR2_P", CellFunction::Xor2, 1.3, 11.0, 1.5),
            Library::std("XNOR2_P", CellFunction::Xnor2, 1.3, 11.0, 1.5),
            Library::std("MAJ3_P", CellFunction::Maj3, 1.6, 13.0, 1.8),
            Library::std("DFF_P", CellFunction::Dff, 4.5, 35.0, 4.0),
            Library::std("SDFF_P", CellFunction::ScanDff, 5.5, 38.0, 4.6),
        ] {
            l.add_cell(def);
        }
        Arc::new(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_input_names() {
        let fns = [
            CellFunction::Const0,
            CellFunction::Const1,
            CellFunction::Buf,
            CellFunction::Inv,
            CellFunction::And(2),
            CellFunction::And(3),
            CellFunction::And(4),
            CellFunction::Nand(2),
            CellFunction::Nand(3),
            CellFunction::Nand(4),
            CellFunction::Or(2),
            CellFunction::Nor(4),
            CellFunction::Xor2,
            CellFunction::Xnor2,
            CellFunction::Aoi21,
            CellFunction::Oai21,
            CellFunction::Mux2,
            CellFunction::Maj3,
            CellFunction::Dff,
            CellFunction::ScanDff,
            CellFunction::ClockGate,
            CellFunction::LevelShifter,
            CellFunction::Isolation,
            CellFunction::Decap,
        ];
        for f in fns {
            assert_eq!(f.num_inputs(), f.input_names().len(), "{f:?}");
        }
    }

    #[test]
    fn eval_and_eval64_agree() {
        let fns = [
            CellFunction::Inv,
            CellFunction::Nand(2),
            CellFunction::Nand(3),
            CellFunction::Nor(2),
            CellFunction::Xor2,
            CellFunction::Xnor2,
            CellFunction::Aoi21,
            CellFunction::Oai21,
            CellFunction::Mux2,
            CellFunction::Maj3,
            CellFunction::ScanDff,
            CellFunction::Isolation,
        ];
        for f in fns {
            let n = f.num_inputs();
            for pattern in 0..(1u32 << n) {
                let bools: Vec<bool> = (0..n).map(|i| pattern >> i & 1 == 1).collect();
                let words: Vec<u64> = bools.iter().map(|&b| if b { !0 } else { 0 }).collect();
                let b = f.eval(&bools);
                let w = f.eval64(&words);
                assert_eq!(w, if b { !0 } else { 0 }, "{f:?} pattern {pattern:b}");
            }
        }
    }

    #[test]
    fn mux_semantics() {
        // inputs [A, B, S]: S=0 -> A, S=1 -> B
        assert!(!CellFunction::Mux2.eval(&[false, true, false]));
        assert!(CellFunction::Mux2.eval(&[false, true, true]));
    }

    #[test]
    fn maj3_is_median() {
        assert!(!CellFunction::Maj3.eval(&[true, false, false]));
        assert!(CellFunction::Maj3.eval(&[true, true, false]));
    }

    #[test]
    fn libraries_have_expected_contents() {
        let g = Library::generic();
        assert!(g.find("NAND2_X1").is_some());
        assert!(g.find("XOR2_X1").is_some());
        assert!(g.find_function(CellFunction::Mux2).is_some());
        assert!(!g.is_empty());

        let b = Library::nand_inv_2006();
        assert!(b.find("NAND2_X1").is_some());
        assert!(b.find("XOR2_X1").is_none(), "2006 baseline has no XOR");

        let p = Library::controlled_polarity();
        let xor_p = p.cell(p.find("XOR2_P").unwrap()).area_um2;
        let xor_cmos = g.cell(g.find("XOR2_X1").unwrap()).area_um2;
        assert!(xor_p < xor_cmos / 1.5, "polarity XOR must be much cheaper");
    }

    #[test]
    #[should_panic(expected = "duplicate cell name")]
    fn duplicate_cell_panics() {
        let mut l = Library::new("t");
        l.add_cell(Library::std("X", CellFunction::Inv, 1.0, 1.0, 1.0));
        l.add_cell(Library::std("X", CellFunction::Buf, 1.0, 1.0, 1.0));
    }

    #[test]
    fn find_function_returns_first_match() {
        let g = Library::generic();
        let id = g.find_function(CellFunction::Nand(2)).unwrap();
        assert_eq!(g.cell(id).name, "NAND2_X1");
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn eval_wrong_arity_panics() {
        CellFunction::Nand(2).eval(&[true]);
    }
}
