//! Static timing analysis for the `eda` workspace.
//!
//! A classic block-based STA: topological arrival-time propagation with
//! load-dependent cell delays, required times from the clock constraint, and
//! slack/critical-path extraction. Both the synthesis comparison (claim C3's
//! "we have also improved performance") and the flow report use it.
//!
//! # Delay model
//!
//! `delay(cell, load) = intrinsic + drive_ps_per_ff × load_fF`, where the
//! load of a net is the sum of its sink pins' input capacitances plus a
//! wire-cap estimate per fanout. Flops launch at their clock-to-Q delay and
//! capture with a fixed setup margin.
//!
//! # Examples
//!
//! ```
//! use eda_netlist::generate;
//! use eda_sta::{TimingAnalysis, TimingConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = generate::ripple_carry_adder(16)?;
//! let timing = TimingAnalysis::run(&design, &TimingConfig::default())?;
//! assert!(timing.critical_path_ps > 0.0);
//! assert!(!timing.critical_path.is_empty());
//! # Ok(())
//! # }
//! ```

use eda_netlist::{InstId, NetId, Netlist, NetlistError};

/// Analysis parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingConfig {
    /// Clock period in picoseconds (constraint for slack).
    pub clock_period_ps: f64,
    /// Flop setup time in picoseconds.
    pub setup_ps: f64,
    /// Flop hold time in picoseconds.
    pub hold_ps: f64,
    /// Estimated wire capacitance added per fanout pin, in femtofarads.
    pub wire_cap_per_fanout_ff: f64,
    /// Arrival time of primary inputs, in picoseconds.
    pub input_arrival_ps: f64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            clock_period_ps: 1000.0,
            setup_ps: 20.0,
            hold_ps: 15.0,
            wire_cap_per_fanout_ff: 0.5,
            input_arrival_ps: 0.0,
        }
    }
}

/// One step of the reported critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// Instance on the path.
    pub instance: String,
    /// Cell name.
    pub cell: String,
    /// Arrival time at the instance output, ps.
    pub arrival_ps: f64,
}

/// Complete timing report for one netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingAnalysis {
    /// Longest register-to-register / input-to-output delay, ps.
    pub critical_path_ps: f64,
    /// Worst negative slack (0 if timing is met), ps.
    pub wns_ps: f64,
    /// Total negative slack across all endpoints, ps.
    pub tns_ps: f64,
    /// Number of endpoints with negative slack.
    pub failing_endpoints: usize,
    /// Endpoints analyzed (POs + flop D pins).
    pub endpoints: usize,
    /// The worst path, launch to capture.
    pub critical_path: Vec<PathStep>,
    /// Worst hold slack over flop D pins, ps (negative = violation).
    pub worst_hold_slack_ps: f64,
    /// Number of flop endpoints violating hold.
    pub hold_violations: usize,
    /// Combinational timing arcs evaluated during propagation (one per
    /// non-sequential, non-physical instance).
    pub arcs_timed: usize,
    arrivals: Vec<f64>,
}

impl TimingAnalysis {
    /// Runs STA on a netlist.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] if the netlist is invalid or cyclic.
    pub fn run(netlist: &Netlist, config: &TimingConfig) -> Result<TimingAnalysis, NetlistError> {
        let lib = netlist.library();
        let order = netlist.topo_order()?;
        let num_nets = netlist.num_nets();
        let mut arrival = vec![0.0f64; num_nets];
        let mut from_inst: Vec<Option<InstId>> = vec![None; num_nets];

        for &pi in netlist.primary_inputs() {
            arrival[pi.index()] = config.input_arrival_ps;
        }
        for f in netlist.flops() {
            let inst = netlist.instance(f);
            let def = lib.cell(inst.cell());
            arrival[inst.output().index()] = def.delay_ps;
            from_inst[inst.output().index()] = Some(f);
        }

        let load_of = |net: NetId| -> f64 {
            let n = netlist.net(net);
            let pin_caps: f64 = n
                .sinks()
                .iter()
                .map(|&(s, _)| lib.cell(netlist.instance(s).cell()).input_cap_ff)
                .sum();
            pin_caps + n.fanout() as f64 * config.wire_cap_per_fanout_ff
        };

        // Min (early) arrivals for hold analysis run in the same pass.
        let mut early = vec![0.0f64; num_nets];
        for &pi in netlist.primary_inputs() {
            early[pi.index()] = config.input_arrival_ps;
        }
        for f in netlist.flops() {
            let inst = netlist.instance(f);
            // Fast clk-to-Q corner: half the nominal.
            early[inst.output().index()] = lib.cell(inst.cell()).delay_ps * 0.5;
        }
        let mut arcs_timed = 0usize;
        for &id in &order {
            let inst = netlist.instance(id);
            let def = lib.cell(inst.cell());
            if def.function.is_sequential() || def.function.is_physical_only() {
                continue;
            }
            arcs_timed += 1;
            let worst_in =
                inst.inputs().iter().map(|n| arrival[n.index()]).fold(0.0f64, f64::max);
            let best_in =
                inst.inputs().iter().map(|n| early[n.index()]).fold(f64::INFINITY, f64::min);
            let out = inst.output();
            arrival[out.index()] = worst_in + def.delay_ps + def.drive_ps_per_ff * load_of(out);
            // Fast corner: half the intrinsic, no load pessimism.
            early[out.index()] = if inst.inputs().is_empty() {
                0.0
            } else {
                best_in + def.delay_ps * 0.5
            };
            from_inst[out.index()] = Some(id);
        }
        // Hold slacks at flop D pins: early data arrival must beat hold.
        let mut worst_hold = f64::INFINITY;
        let mut hold_violations = 0usize;
        for f in netlist.flops() {
            let d = netlist.instance(f).inputs()[0];
            let slack = early[d.index()] - config.hold_ps;
            if slack < worst_hold {
                worst_hold = slack;
            }
            if slack < 0.0 {
                hold_violations += 1;
            }
        }
        if netlist.flops().is_empty() {
            worst_hold = 0.0;
        }

        struct Endpoint {
            net: NetId,
            required: f64,
        }
        let mut endpoints: Vec<Endpoint> = netlist
            .primary_outputs()
            .iter()
            .map(|&(_, n)| Endpoint { net: n, required: config.clock_period_ps })
            .collect();
        for f in netlist.flops() {
            let inst = netlist.instance(f);
            endpoints.push(Endpoint {
                net: inst.inputs()[0],
                required: config.clock_period_ps - config.setup_ps,
            });
        }

        let mut wns = 0.0f64;
        let mut tns = 0.0f64;
        let mut failing = 0usize;
        let mut worst: Option<NetId> = None;
        let mut worst_arrival = -1.0f64;
        for ep in &endpoints {
            let a = arrival[ep.net.index()];
            let slack = ep.required - a;
            if slack < 0.0 {
                failing += 1;
                tns += slack;
                if slack < wns {
                    wns = slack;
                }
            }
            if a > worst_arrival {
                worst_arrival = a;
                worst = Some(ep.net);
            }
        }

        let mut path = Vec::new();
        let mut cursor = worst;
        while let Some(net) = cursor {
            match from_inst[net.index()] {
                None => break,
                Some(inst_id) => {
                    let inst = netlist.instance(inst_id);
                    let def = lib.cell(inst.cell());
                    path.push(PathStep {
                        instance: inst.name().to_string(),
                        cell: def.name.clone(),
                        arrival_ps: arrival[net.index()],
                    });
                    if def.function.is_sequential() {
                        break;
                    }
                    cursor = inst.inputs().iter().copied().max_by(|a, b| {
                        arrival[a.index()].total_cmp(&arrival[b.index()])
                    });
                }
            }
        }
        path.reverse();

        Ok(TimingAnalysis {
            critical_path_ps: worst_arrival.max(0.0),
            wns_ps: wns,
            tns_ps: tns,
            failing_endpoints: failing,
            endpoints: endpoints.len(),
            critical_path: path,
            worst_hold_slack_ps: worst_hold,
            hold_violations,
            arcs_timed,
            arrivals: arrival,
        })
    }

    /// Arrival time of a net, ps.
    pub fn arrival_ps(&self, net: NetId) -> f64 {
        self.arrivals[net.index()]
    }

    /// Whether the clock constraint is met.
    pub fn met(&self) -> bool {
        self.failing_endpoints == 0
    }

    /// The minimum clock period this netlist could run at, ps.
    pub fn min_period_ps(&self, config: &TimingConfig) -> f64 {
        self.critical_path_ps + config.setup_ps
    }
}

/// Returns the maximum clock frequency in MHz implied by an analysis.
pub fn fmax_mhz(analysis: &TimingAnalysis, config: &TimingConfig) -> f64 {
    1e6 / analysis.min_period_ps(config)
}

/// Inverse-delay "performance" figure used by the C3 synthesis comparison.
pub fn performance_score(analysis: &TimingAnalysis) -> f64 {
    if analysis.critical_path_ps <= 0.0 {
        return 0.0;
    }
    1000.0 / analysis.critical_path_ps
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_netlist::{generate, CellFunction, Netlist};

    #[test]
    fn chain_delay_accumulates() {
        let mut n = Netlist::new("chain");
        let mut x = n.add_input("a");
        for i in 0..5 {
            x = n.add_gate_fn(format!("u{i}"), CellFunction::Inv, &[x]).unwrap();
        }
        n.add_output("y", x);
        let t = TimingAnalysis::run(&n, &TimingConfig::default()).unwrap();
        assert!(t.critical_path_ps > 5.0 * 8.0);
        assert!(t.critical_path_ps < 5.0 * 30.0);
        assert_eq!(t.critical_path.len(), 5);
        assert!(t.met());
    }

    #[test]
    fn fanout_increases_delay() {
        let build = |fanout: usize| {
            let mut n = Netlist::new("f");
            let a = n.add_input("a");
            let x = n.add_gate_fn("drv", CellFunction::Inv, &[a]).unwrap();
            for i in 0..fanout {
                let y = n.add_gate_fn(format!("s{i}"), CellFunction::Buf, &[x]).unwrap();
                n.add_output(format!("o{i}"), y);
            }
            TimingAnalysis::run(&n, &TimingConfig::default()).unwrap().critical_path_ps
        };
        assert!(build(8) > build(1));
    }

    #[test]
    fn adder_critical_path_grows_with_width() {
        let t8 = TimingAnalysis::run(
            &generate::ripple_carry_adder(8).unwrap(),
            &TimingConfig::default(),
        )
        .unwrap();
        let t32 = TimingAnalysis::run(
            &generate::ripple_carry_adder(32).unwrap(),
            &TimingConfig::default(),
        )
        .unwrap();
        assert!(t32.critical_path_ps > 2.0 * t8.critical_path_ps);
    }

    #[test]
    fn tight_clock_fails_timing() {
        let n = generate::ripple_carry_adder(32).unwrap();
        let cfg = TimingConfig { clock_period_ps: 100.0, ..Default::default() };
        let t = TimingAnalysis::run(&n, &cfg).unwrap();
        assert!(!t.met());
        assert!(t.wns_ps < 0.0);
        assert!(t.tns_ps <= t.wns_ps);
        assert!(t.failing_endpoints > 0);
    }

    #[test]
    fn sequential_endpoints_counted() {
        let n = generate::switch_fabric(3, 2).unwrap();
        let t = TimingAnalysis::run(&n, &TimingConfig::default()).unwrap();
        assert_eq!(t.endpoints, n.primary_outputs().len() + n.flops().len());
    }

    #[test]
    fn critical_path_is_monotone_in_arrival() {
        let n = generate::array_multiplier(4).unwrap();
        let t = TimingAnalysis::run(&n, &TimingConfig::default()).unwrap();
        let mut last = 0.0;
        for step in &t.critical_path {
            assert!(step.arrival_ps >= last, "arrivals must increase along the path");
            last = step.arrival_ps;
        }
        assert!((last - t.critical_path_ps).abs() < 1e-9);
    }

    #[test]
    fn input_arrival_shifts_everything() {
        let n = generate::parity_tree(8).unwrap();
        let base = TimingAnalysis::run(&n, &TimingConfig::default()).unwrap();
        let shifted = TimingAnalysis::run(
            &n,
            &TimingConfig { input_arrival_ps: 100.0, ..Default::default() },
        )
        .unwrap();
        assert!((shifted.critical_path_ps - base.critical_path_ps - 100.0).abs() < 1e-6);
    }

    #[test]
    fn fmax_inverse_of_period() {
        let n = generate::parity_tree(8).unwrap();
        let cfg = TimingConfig::default();
        let t = TimingAnalysis::run(&n, &cfg).unwrap();
        let f = fmax_mhz(&t, &cfg);
        assert!((f * t.min_period_ps(&cfg) - 1e6).abs() < 1.0);
    }

    #[test]
    fn shift_register_has_hold_risk() {
        // Back-to-back flops with no logic between: the fast-corner Q->D
        // path is only half a clk-to-Q, a classic hold hazard.
        let mut n = Netlist::new("shift");
        let ck = n.add_input("ck");
        let d = n.add_input("d");
        let q1 = n.add_gate_fn("ff1", CellFunction::Dff, &[d, ck]).unwrap();
        let q2 = n.add_gate_fn("ff2", CellFunction::Dff, &[q1, ck]).unwrap();
        n.add_output("q", q2);
        let cfg = TimingConfig { hold_ps: 30.0, ..Default::default() };
        let t = TimingAnalysis::run(&n, &cfg).unwrap();
        assert!(t.hold_violations > 0, "direct Q->D must violate a 30ps hold");
        assert!(t.worst_hold_slack_ps < 0.0);
    }

    #[test]
    fn buffering_fixes_hold() {
        let mut n = Netlist::new("shift_buf");
        let ck = n.add_input("ck");
        let d = n.add_input("d");
        let q1 = n.add_gate_fn("ff1", CellFunction::Dff, &[d, ck]).unwrap();
        let mut x = q1;
        for i in 0..6 {
            x = n.add_gate_fn(format!("hold_buf{i}"), CellFunction::Buf, &[x]).unwrap();
        }
        let q2 = n.add_gate_fn("ff2", CellFunction::Dff, &[x, ck]).unwrap();
        n.add_output("q", q2);
        let cfg = TimingConfig { hold_ps: 30.0, ..Default::default() };
        let t = TimingAnalysis::run(&n, &cfg).unwrap();
        // ff1's D (from the PI) may be early, but the buffered Q->D path is
        // now safe: worst hold slack improves and the buffered flop passes.
        let mut bare = Netlist::new("bare");
        let bck = bare.add_input("ck");
        let bd = bare.add_input("d");
        let bq1 = bare.add_gate_fn("ff1", CellFunction::Dff, &[bd, bck]).unwrap();
        let bq2 = bare.add_gate_fn("ff2", CellFunction::Dff, &[bq1, bck]).unwrap();
        bare.add_output("q", bq2);
        let t0 = TimingAnalysis::run(&bare, &cfg).unwrap();
        assert!(t.hold_violations < t0.hold_violations + 1);
        assert!(t.worst_hold_slack_ps >= t0.worst_hold_slack_ps);
    }

    #[test]
    fn combinational_design_has_no_hold_endpoints() {
        let n = generate::parity_tree(8).unwrap();
        let t = TimingAnalysis::run(&n, &TimingConfig::default()).unwrap();
        assert_eq!(t.hold_violations, 0);
        assert_eq!(t.worst_hold_slack_ps, 0.0);
    }

    #[test]
    fn cyclic_netlist_rejected() {
        use eda_netlist::InstId;
        let _ = InstId::from_index(0);
        // Build a cycle via the splice trick used in netlist tests is not
        // possible through the public API; instead check the error path with
        // an undriven output.
        let mut n = Netlist::new("bad");
        let ghost = n.add_net("ghost");
        n.add_output("y", ghost);
        assert!(n.validate().is_err());
        // STA still runs (topo order fine; arrival of undriven net is 0).
        let t = TimingAnalysis::run(&n, &TimingConfig::default());
        assert!(t.is_ok());
    }
}
