//! Daemon contract: the network front end never weakens the engine's
//! guarantees. Every completed request's QoR fingerprint over the wire is
//! bit-identical to a solo `run_flow` of the same spec; overload is shed
//! only through typed `rejected` frames; deadlines surface as typed errors,
//! never hangs; a hostile or vanished client costs at most its own
//! connection; and shutdown drains every admitted request before the ack.
//!
//! Each test binds its own daemon on a unique socket in the temp dir and
//! runs it on a plain thread — `Daemon::bind` happens on the test thread so
//! the socket exists before any client connects.

use eda_core::daemon::protocol::{ClientFrame, ServerFrame};
use eda_core::{
    run_flow, Daemon, DaemonClient, DaemonConfig, DaemonStats, DesignSpec, Endpoint, RejectReason,
    RetryPolicy, SubmitSpec, Terminal, TransportFaultPlan,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A unique socket path per test and per process.
fn sock(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("eda_flowd_{}_{tag}_{n}.sock", std::process::id()))
}

/// A daemon running on its own thread, plus everything needed to reach it.
struct Flowd {
    endpoint: Endpoint,
    socket: PathBuf,
    handle: JoinHandle<std::io::Result<DaemonStats>>,
}

impl Flowd {
    /// Binds on the test thread (so the socket exists before any client
    /// connects), then serves on a background thread.
    fn spawn(cfg: DaemonConfig) -> Flowd {
        let socket = cfg.socket.clone();
        let daemon = Daemon::bind(cfg).expect("bind daemon");
        let endpoint = Endpoint::Unix(socket.clone());
        let handle = std::thread::spawn(move || daemon.run());
        Flowd { endpoint, socket, handle }
    }

    fn client(&self) -> DaemonClient {
        DaemonClient::connect_retry(&self.endpoint, &RetryPolicy::default())
            .expect("connect to daemon")
    }

    /// Asks for drain via a fresh connection and joins the daemon thread;
    /// the ack stats and the exit stats must agree.
    fn finish(self) -> DaemonStats {
        let ack = self.client().shutdown().expect("shutdown ack");
        let exit = self.handle.join().expect("daemon thread").expect("daemon exit");
        assert_eq!(ack, exit, "ack and exit stats describe the same lifetime");
        assert!(!self.socket.exists(), "the daemon removes its socket on exit");
        exit
    }
}

/// The ground truth a daemon answer must match: the same spec run solo,
/// in-process, single-threaded. Memoized — several tests share designs.
fn solo_fp(design: &str) -> u64 {
    static CACHE: Mutex<Option<HashMap<String, u64>>> = Mutex::new(None);
    if let Some(fp) = CACHE
        .lock()
        .unwrap()
        .get_or_insert_with(HashMap::new)
        .get(design)
        .copied()
    {
        return fp;
    }
    let spec = SubmitSpec::new(0, design);
    let parsed: DesignSpec = design.parse().expect("design spec");
    let netlist = parsed.build().expect("build design");
    let cfg = eda_core::flow_config_for(&spec, 1, None, None).expect("flow config");
    let fp = run_flow(&netlist, &cfg).expect("solo run").qor_fingerprint();
    CACHE
        .lock()
        .unwrap()
        .get_or_insert_with(HashMap::new)
        .insert(design.to_string(), fp);
    fp
}

fn fp_of(outcome: &eda_core::RequestOutcome) -> u64 {
    match &outcome.terminal {
        Terminal::Done { ok: true, qor_fp: Some(fp), .. } => *fp,
        other => panic!("request {} did not complete: {other:?}", outcome.id),
    }
}

#[test]
fn round_trip_matches_solo_runs_and_streams_progress() {
    let daemon = Flowd::spawn(DaemonConfig::new(sock("roundtrip")));
    let designs = ["fabric:3x3", "parity:16", "adder:8"];
    let specs: Vec<SubmitSpec> = designs
        .iter()
        .enumerate()
        .map(|(i, d)| SubmitSpec::new(i as u64 + 1, *d))
        .collect();
    let outcomes = daemon.client().drive(&specs).expect("drive batch");

    assert_eq!(outcomes.len(), designs.len());
    for (outcome, design) in outcomes.iter().zip(designs) {
        assert!(outcome.accepted, "{design} gets an accepted frame");
        assert!(
            !outcome.stages.is_empty(),
            "{design} streams per-stage progress before its terminal frame"
        );
        assert_eq!(
            fp_of(outcome),
            solo_fp(design),
            "{design} over the wire must be bit-identical to a solo run"
        );
    }

    let stats = daemon.finish();
    assert_eq!(stats.accepted, 3);
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.rejected(), 0);
    assert_eq!(stats.failed, 0);
}

#[test]
fn bad_requests_are_rejected_without_occupying_the_queue() {
    let daemon = Flowd::spawn(DaemonConfig::new(sock("badreq")));
    let mut client = daemon.client();
    for (id, design) in [(1u64, "bogus:9"), (2, "fabric:0x0"), (3, "rand:no:seed")] {
        let outcome = client.request(&SubmitSpec::new(id, design)).expect("terminal frame");
        assert!(
            outcome.rejected_with(RejectReason::BadRequest),
            "`{design}` must be shed as bad-request, got {:?}",
            outcome.terminal
        );
        assert!(!outcome.accepted, "a bad request is never admitted");
    }
    let stats = daemon.finish();
    assert_eq!(stats.rejected_bad, 3);
    assert_eq!(stats.accepted, 0);
}

#[test]
fn overload_is_shed_with_typed_queue_full_rejections() {
    let mut cfg = DaemonConfig::new(sock("overload"));
    cfg.workers = 1;
    cfg.queue_high_water = 1;
    let daemon = Flowd::spawn(cfg);

    // Six instant submits against one worker and one queue slot: the first
    // occupies the worker, the second the queue, the rest are shed. (The
    // exact split can shift by one if the worker dequeues between sends,
    // so only the conservation law and the shedding are pinned.)
    let specs: Vec<SubmitSpec> =
        (1..=6).map(|i| SubmitSpec::new(i, "fabric:3x3")).collect();
    let outcomes = daemon.client().drive(&specs).expect("drive batch");

    let shed: Vec<&eda_core::RequestOutcome> =
        outcomes.iter().filter(|o| o.rejected_with(RejectReason::QueueFull)).collect();
    assert!(!shed.is_empty(), "past high water the daemon must shed load");
    for o in &shed {
        assert!(!o.accepted, "a shed request never got an accepted frame");
    }
    let expect = solo_fp("fabric:3x3");
    let completed = outcomes
        .iter()
        .filter(|o| matches!(o.terminal, Terminal::Done { ok: true, .. }))
        .inspect(|o| assert_eq!(fp_of(o), expect, "survivors keep bit-identical QoR"))
        .count();
    assert!(completed >= 1);

    let stats = daemon.finish();
    assert_eq!(stats.accepted + stats.rejected(), 6, "every submit got a typed answer");
    assert_eq!(stats.rejected_full, shed.len() as u64);
    assert_eq!(stats.completed, completed as u64);
}

#[test]
fn deadline_overrun_is_a_typed_error_and_the_daemon_stays_healthy() {
    let daemon = Flowd::spawn(DaemonConfig::new(sock("deadline")));
    let mut client = daemon.client();

    let mut doomed = SubmitSpec::new(1, "fabric:3x3");
    doomed.deadline_ms = Some(1);
    let outcome = client.request(&doomed).expect("terminal frame");
    assert!(outcome.accepted, "the deadline trips after admission, not at it");
    match &outcome.terminal {
        Terminal::Done { ok: false, error: Some(err), .. } => {
            assert!(
                err.contains("deadline"),
                "the error names the deadline, got: {err}"
            );
        }
        other => panic!("expected a typed deadline failure, got {other:?}"),
    }

    // The worker survived: the same connection immediately serves a
    // deadline-free request with correct QoR.
    let ok = client.request(&SubmitSpec::new(2, "parity:16")).expect("terminal frame");
    assert_eq!(fp_of(&ok), solo_fp("parity:16"));

    let stats = daemon.finish();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn malformed_frames_cost_only_the_offending_connection() {
    let daemon = Flowd::spawn(DaemonConfig::new(sock("hostile")));

    // A well-formed request in flight on connection A...
    let mut well_formed = daemon.client();
    let runner = std::thread::spawn(move || {
        well_formed.request(&SubmitSpec::new(1, "fabric:3x3")).expect("terminal frame")
    });

    // ...while connection B talks garbage and connection C sends an
    // oversized frame. Both die; A must not notice.
    let Endpoint::Unix(path) = &daemon.endpoint else { unreachable!() };
    let mut garbage = UnixStream::connect(path).expect("connect raw");
    garbage
        .write_all(b"\x02this is not a frame at all\n")
        .expect("write garbage");
    let mut oversized = UnixStream::connect(path).expect("connect raw");
    let huge = vec![b'x'; (1 << 20) + 64];
    // The daemon may kill the connection mid-write once the cap trips;
    // either way the bytes must not take the daemon down.
    let _ = oversized.write_all(&huge);
    let _ = oversized.write_all(b"\n");

    let outcome = runner.join().expect("well-formed client");
    assert_eq!(
        fp_of(&outcome),
        solo_fp("fabric:3x3"),
        "a concurrent well-formed request keeps bit-identical QoR"
    );

    let stats = daemon.finish();
    assert!(
        stats.protocol_errors >= 1,
        "the garbage frame is counted, got {stats:?}"
    );
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.failed, 0);
}

#[test]
fn mid_run_disconnect_cancels_only_that_clients_queue() {
    let mut cfg = DaemonConfig::new(sock("disconnect"));
    cfg.workers = 1;
    let daemon = Flowd::spawn(cfg);

    // The hostile client gets two requests admitted — each `accepted` frame
    // is read back before the next send, so admission is not racing the
    // drop — then its third frame is the injected disconnect. With one
    // worker, request 1 is running and request 2 still queued when the drop
    // lands: the queued one must be lazily cancelled at dequeue, not run
    // for a dead peer.
    let mut hostile = daemon
        .client()
        .with_faults(TransportFaultPlan::parse("conn-drop@2").expect("fault plan"));
    for id in 1..=2u64 {
        hostile.send(&ClientFrame::Submit(SubmitSpec::new(id, "fabric:3x3"))).expect("send");
        loop {
            // Stage frames from request 1 may interleave; wait for the ack.
            match hostile.recv().expect("server frame") {
                ServerFrame::Accepted { id: got, .. } => {
                    assert_eq!(got, id);
                    break;
                }
                _ => continue,
            }
        }
    }
    let err = hostile.send(&ClientFrame::Ping).expect_err("the injected drop fires");
    assert!(
        err.to_string().contains("injected conn-drop"),
        "the client error names the injected fault, got: {err}"
    );

    // A well-formed sibling submitted after the drop still completes.
    let outcome = daemon
        .client()
        .request(&SubmitSpec::new(9, "parity:16"))
        .expect("terminal frame");
    assert_eq!(fp_of(&outcome), solo_fp("parity:16"));

    let stats = daemon.finish();
    assert!(
        stats.disconnects >= 1,
        "the dead client's queued request was cancelled at dequeue, got {stats:?}"
    );
    assert_eq!(stats.accepted, 3, "two hostile submits landed plus the sibling");
    assert_eq!(
        stats.completed + stats.disconnects,
        stats.accepted,
        "every admitted request either ran or was cancelled for a dead peer"
    );
}

#[test]
fn shutdown_drains_every_admitted_request_before_acking() {
    let mut cfg = DaemonConfig::new(sock("drain"));
    cfg.workers = 1;
    let daemon = Flowd::spawn(cfg);

    // Three requests deep on one worker, then a shutdown from a second
    // connection while they are still queued.
    let mut submitter = daemon.client();
    let worker = std::thread::spawn(move || {
        let specs: Vec<SubmitSpec> =
            (1..=3).map(|i| SubmitSpec::new(i, "fabric:3x3")).collect();
        submitter.drive(&specs).expect("drive batch")
    });
    std::thread::sleep(Duration::from_millis(200));

    let started = Instant::now();
    let ack = daemon.client().shutdown().expect("shutdown ack");
    assert_eq!(ack.accepted, 3);
    assert_eq!(
        ack.completed, 3,
        "the ack only arrives once every in-flight request finished"
    );

    // The in-flight client saw all three complete, not a dropped line.
    let outcomes = worker.join().expect("submitter thread");
    let expect = solo_fp("fabric:3x3");
    for o in &outcomes {
        assert_eq!(fp_of(o), expect, "drained requests keep bit-identical QoR");
    }

    // After the ack the daemon is gone: new connects fail fast.
    let exit = daemon.handle.join().expect("daemon thread").expect("daemon exit");
    assert_eq!(exit, ack);
    assert!(!daemon.socket.exists());
    let policy = RetryPolicy { attempts: 1, base_ms: 1, cap_ms: 1, retry_queue_full: false };
    assert!(DaemonClient::connect_retry(&daemon.endpoint, &policy).is_err());
    // Sanity: the drain (3 × ~seconds of flow) dominated the ack latency.
    assert!(started.elapsed() > Duration::from_millis(50));
}

#[test]
fn submits_during_drain_get_typed_draining_rejections() {
    let mut cfg = DaemonConfig::new(sock("draining"));
    cfg.workers = 1;
    let daemon = Flowd::spawn(cfg);

    // Occupy the worker so drain has something to wait on.
    let mut busy = daemon.client();
    let runner = std::thread::spawn(move || {
        busy.request(&SubmitSpec::new(1, "fabric:3x3")).expect("terminal frame")
    });
    std::thread::sleep(Duration::from_millis(200));

    // Begin drain, then race a late submit on a pre-existing connection.
    // (A Shutdown frame starts the drain immediately; the ack waits.)
    let mut late = daemon.client();
    let mut closer = daemon.client();
    let ack = std::thread::spawn(move || closer.shutdown().expect("shutdown ack"));
    std::thread::sleep(Duration::from_millis(100));
    let outcome = late.request(&SubmitSpec::new(2, "parity:16")).expect("terminal frame");
    assert!(
        outcome.rejected_with(RejectReason::Draining),
        "a submit during drain is shed with `draining`, got {:?}",
        outcome.terminal
    );

    assert_eq!(fp_of(&runner.join().expect("runner")), solo_fp("fabric:3x3"));
    let stats = ack.join().expect("ack thread");
    assert_eq!(stats.rejected_draining, 1);
    assert_eq!(stats.completed, 1);
    let exit = daemon.handle.join().expect("daemon thread").expect("daemon exit");
    assert_eq!(exit, stats);
}

#[test]
fn tcp_endpoint_serves_the_same_protocol() {
    let mut cfg = DaemonConfig::new(sock("tcp"));
    cfg.tcp = Some("127.0.0.1:0".to_string());
    let socket = cfg.socket.clone();
    let daemon = Daemon::bind(cfg).expect("bind daemon");
    let addr = daemon.tcp_addr().expect("bound tcp address");
    let handle = std::thread::spawn(move || daemon.run());

    let endpoint = Endpoint::Tcp(addr.to_string());
    let mut client =
        DaemonClient::connect_retry(&endpoint, &RetryPolicy::default()).expect("tcp connect");
    let outcome = client.request(&SubmitSpec::new(1, "parity:16")).expect("terminal frame");
    assert_eq!(
        fp_of(&outcome),
        solo_fp("parity:16"),
        "the TCP transport carries the same bit-identical QoR"
    );
    let ack = client.shutdown().expect("shutdown ack");
    assert_eq!(ack.completed, 1);
    let exit = handle.join().expect("daemon thread").expect("daemon exit");
    assert_eq!(exit, ack);
    assert!(!socket.exists());
}

#[test]
fn sigterm_triggers_graceful_drain() {
    let mut cfg = DaemonConfig::new(sock("sigterm"));
    cfg.handle_sigterm = true;
    let daemon = Flowd::spawn(cfg);

    // A successful ping proves the accept loop is up, which in turn proves
    // `run` installed the handler (it does so before spawning listeners) —
    // only then is raising SIGTERM at this process safe.
    let mut client = daemon.client();
    client.ping().expect("daemon is live");
    let outcome = client.request(&SubmitSpec::new(1, "parity:16")).expect("terminal frame");
    assert_eq!(fp_of(&outcome), solo_fp("parity:16"));

    // SAFETY: the daemon's handler is installed (single atomic store,
    // async-signal-safe); `raise` delivers SIGTERM to this process only.
    let rc = unsafe { libc::raise(libc::SIGTERM) };
    assert_eq!(rc, 0);

    // No shutdown frame, no ack owed: the daemon notices the flag, drains,
    // and exits cleanly on its own.
    let exit = daemon.handle.join().expect("daemon thread").expect("daemon exit");
    assert_eq!(exit.completed, 1);
    assert_eq!(exit.accepted, 1);
    assert!(!daemon.socket.exists(), "the daemon removes its socket on SIGTERM drain");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Hostile storms: arbitrary byte salvos and truncated frames on
    /// sacrificial connections never panic the daemon and never perturb the
    /// QoR of a concurrent well-formed request.
    #[test]
    fn hostile_byte_storms_never_perturb_well_formed_requests(
        salvos in collection::vec(collection::vec(any::<u8>(), 1..200), 1..6),
        truncate_at in 1usize..20,
    ) {
        let daemon = Flowd::spawn(DaemonConfig::new(sock("storm")));

        let mut well_formed = daemon.client();
        let runner = std::thread::spawn(move || {
            well_formed.request(&SubmitSpec::new(1, "fabric:3x3")).expect("terminal frame")
        });

        let Endpoint::Unix(path) = &daemon.endpoint else { unreachable!() };
        for salvo in &salvos {
            // Raw bytes, newline-terminated so the daemon sees a full frame.
            let mut s = UnixStream::connect(path).expect("connect raw");
            let _ = s.write_all(salvo);
            let _ = s.write_all(b"\n");
            // Dropping `s` here is also a mid-stream disconnect.
        }
        // A truncated valid frame: cut a real submit line short, then hang up.
        let line = {
            let spec = SubmitSpec::new(7, "parity:16");
            let mut l = eda_core::daemon::protocol::ClientFrame::Submit(spec).to_line();
            l.truncate(truncate_at.min(l.len() - 1));
            l
        };
        let mut s = UnixStream::connect(path).expect("connect raw");
        let _ = s.write_all(line.as_bytes());
        drop(s);

        let outcome = runner.join().expect("well-formed client");
        prop_assert_eq!(
            fp_of(&outcome),
            solo_fp("fabric:3x3"),
            "the well-formed request must be bit-identical despite the storm"
        );
        let stats = daemon.finish();
        prop_assert_eq!(stats.completed, 1);
        prop_assert_eq!(stats.failed, 0);
    }
}
