//! Incremental-flow contract: the content-addressed stage cache replays
//! warm runs bit-identically, invalidates on any input change, and treats
//! damaged entries as cold — never as errors.
//!
//! The cache key is `(stage kind, config fingerprint ⊇ {design, seed},
//! hash of the serialized pre-stage state)`, so these tests pin the three
//! behaviors the flow depends on: a warm re-run of an unchanged flow skips
//! every stage with `same_qor` against the cold run at any thread count;
//! changing the design, the seed, or any QoR-relevant config knob misses;
//! and a poisoned entry silently falls back to a recompute.

use eda_core::{run_flow, Fault, FaultPlan, FlowConfig, FlowReport};
use eda_netlist::{generate, Netlist};
use eda_tech::Node;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A scratch cache directory, unique per test and per process.
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "eda_incr_{}_{tag}_{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cached_cfg(dir: &Path, threads: usize) -> FlowConfig {
    let mut cfg = FlowConfig::advanced_2016(Node::N10);
    cfg.threads = threads;
    cfg.cache_dir = Some(dir.to_path_buf());
    cfg
}

fn counter(report: &FlowReport, name: &str) -> u64 {
    match report.telemetry.metrics.get(name) {
        Some(eda_core::Metric::Counter(n)) => *n,
        _ => 0,
    }
}

fn smoke_design() -> Netlist {
    generate::switch_fabric(3, 3).unwrap()
}

#[test]
fn warm_run_skips_every_stage_with_identical_qor() {
    let dir = scratch("warm");
    let design = smoke_design();
    let cold = run_flow(&design, &cached_cfg(&dir, 1)).unwrap();
    assert_eq!(counter(&cold, "cache.hits"), 0, "first run must be cold");
    assert_eq!(counter(&cold, "cache.misses"), 11, "all 11 stages miss cold");

    let warm = run_flow(&design, &cached_cfg(&dir, 1)).unwrap();
    assert_eq!(counter(&warm, "cache.hits"), 11, "warm run must hit every stage");
    assert_eq!(counter(&warm, "cache.misses"), 0);
    assert!(cold.same_qor(&warm), "warm QoR must be bit-identical to cold");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_qor_is_thread_invariant() {
    // One cache dir, filled at 1 thread, replayed at 2/4/8: every warm run
    // must hit everything and match the cold QoR bit for bit.
    let dir = scratch("threads");
    let design = smoke_design();
    let cold = run_flow(&design, &cached_cfg(&dir, 1)).unwrap();
    for threads in [1usize, 2, 4, 8] {
        let warm = run_flow(&design, &cached_cfg(&dir, threads)).unwrap();
        assert_eq!(
            counter(&warm, "cache.hits"),
            11,
            "warm run at {threads} threads must hit every stage"
        );
        assert!(
            cold.same_qor(&warm),
            "warm QoR at {threads} threads must match the cold run"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_invalidates_on_netlist_config_and_seed_change() {
    let dir = scratch("invalidate");
    let design = smoke_design();
    let _ = run_flow(&design, &cached_cfg(&dir, 1)).unwrap();

    // Different design: the config fingerprint folds in design identity.
    let other = generate::parity_tree(16).unwrap();
    let r = run_flow(&other, &cached_cfg(&dir, 1)).unwrap();
    assert_eq!(counter(&r, "cache.hits"), 0, "a different netlist must miss");

    // Different seed.
    let mut cfg = cached_cfg(&dir, 1);
    cfg.seed = 99;
    let r = run_flow(&design, &cfg).unwrap();
    assert_eq!(counter(&r, "cache.hits"), 0, "a different seed must miss");

    // Different QoR-relevant config knob. Per-stage fingerprints scope the
    // invalidation to the stages that read the knob: `ripup_iterations` is
    // a 7_route input, so the whole prefix through 6_sta still replays and
    // 7_route itself recomputes.
    let mut cfg = cached_cfg(&dir, 1);
    cfg.ripup_iterations += 1;
    let r = run_flow(&design, &cfg).unwrap();
    assert!(
        counter(&r, "cache.hits") >= 7,
        "a route-knob edit must keep the pre-route prefix warm (got {} hits)",
        counter(&r, "cache.hits")
    );
    assert!(counter(&r, "cache.misses") >= 1, "7_route itself must recompute");

    // The unchanged flow still hits: invalidation is per-key, not global.
    let r = run_flow(&design, &cached_cfg(&dir, 1)).unwrap();
    assert_eq!(counter(&r, "cache.hits"), 11);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn threads_do_not_invalidate_the_cache() {
    // `threads` shapes wall-clock only, never QoR, so it is deliberately
    // outside the cache key: a cache filled at 4 threads serves 1.
    let dir = scratch("threads_key");
    let design = smoke_design();
    let cold = run_flow(&design, &cached_cfg(&dir, 4)).unwrap();
    let warm = run_flow(&design, &cached_cfg(&dir, 1)).unwrap();
    assert_eq!(counter(&warm, "cache.hits"), 11);
    assert!(cold.same_qor(&warm));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Flips one payload byte in every `stage`-table record of a store file,
/// leaving the framing (and every other table) intact. Returns how many
/// records were damaged.
fn poison_stage_records(path: &Path) -> usize {
    let mut bytes = std::fs::read(path).unwrap();
    let text = String::from_utf8(bytes.clone()).unwrap();
    let mut damaged = 0;
    let mut pos = 0;
    while let Some(off) = text[pos..].find("%rec ") {
        let start = pos + off;
        let header_end = start + text[start..].find('\n').unwrap() + 1;
        let header = &text[start..header_end - 1];
        let fields: Vec<&str> = header.split(' ').collect();
        let payload_len: usize = fields[3].parse().unwrap();
        if fields[1] == "stage" {
            bytes[header_end] ^= 0x01; // first payload byte
            damaged += 1;
        }
        pos = header_end + payload_len + 1;
    }
    std::fs::write(path, bytes).unwrap();
    damaged
}

#[test]
fn poisoned_entries_fall_back_to_recompute() {
    let dir = scratch("poison");
    let design = smoke_design();
    let cold = run_flow(&design, &cached_cfg(&dir, 1)).unwrap();

    // Flip a payload byte in every stage-cache record: the checksums no
    // longer match, so every stage lookup sees a corrupt (not missing)
    // entry. Sub-stage and provenance records stay intact.
    let store_file = dir.join("flow.store");
    assert_eq!(poison_stage_records(&store_file), 11, "one record per stage");

    // The warm run sees 11 unreadable entries, recomputes everything, and
    // still lands on identical QoR — corruption is never an error.
    let warm = run_flow(&design, &cached_cfg(&dir, 1)).unwrap();
    assert_eq!(counter(&warm, "cache.hits"), 0);
    assert_eq!(counter(&warm, "cache.errors"), 11);
    assert!(cold.same_qor(&warm), "recomputed QoR must match the cold run");

    // The recompute rewrote the damaged entries, so a third run hits again.
    let again = run_flow(&design, &cached_cfg(&dir, 1)).unwrap();
    assert_eq!(counter(&again, "cache.hits"), 11);
    assert!(cold.same_qor(&again));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn substage_memo_survives_a_rewrite_pass_edit() {
    // The acceptance case for sub-stage caching: edit one AIG rewrite pass
    // out of the synthesis script. The stage cache is useless (the
    // 1_synthesis fingerprint changed, and everything downstream keys on
    // its output), but the sub-stage memo still warm-replays every rewrite
    // pass the edit did not touch.
    let dir = scratch("substage");
    let design = smoke_design();
    let cold = run_flow(&design, &cached_cfg(&dir, 1)).unwrap();
    assert!(
        counter(&cold, "cache.substage_misses") > 0,
        "the cold run must populate the sub-stage memo"
    );
    assert_eq!(counter(&cold, "cache.substage_hits"), 0);

    let mut cfg = cached_cfg(&dir, 1);
    cfg.aig_rewrite_passes -= 1;
    let edited = run_flow(&design, &cfg).unwrap();
    assert!(
        counter(&edited, "cache.misses") >= 1,
        "stage-granular caching cannot replay 1_synthesis after a synthesis knob edit"
    );
    assert!(
        counter(&edited, "cache.hits") < 11,
        "1_synthesis must recompute, not hit"
    );
    assert!(
        counter(&edited, "cache.substage_hits") >= 1,
        "the sub-stage memo must replay the untouched rewrite passes (got {})",
        counter(&edited, "cache.substage_hits")
    );

    // The edited config is deterministic in its own right: a rerun is now
    // fully warm and bit-identical.
    let warm = run_flow(&design, &cfg).unwrap();
    assert_eq!(counter(&warm, "cache.hits"), 11);
    assert!(edited.same_qor(&warm));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn substage_replay_is_thread_invariant() {
    // Sub-stage replay must be as thread-proof as stage replay: fill the
    // memo at one thread count, force a partial (sub-stage-only) replay at
    // 1/2/4/8 threads, and demand the exact QoR an uncached run produces.
    let design = smoke_design();
    let mut ref_cfg = FlowConfig::advanced_2016(Node::N10);
    ref_cfg.threads = 1;
    ref_cfg.aig_rewrite_passes -= 1;
    let reference = run_flow(&design, &ref_cfg).unwrap();

    for threads in [1usize, 2, 4, 8] {
        let dir = scratch("subthreads");
        let _ = run_flow(&design, &cached_cfg(&dir, threads)).unwrap();
        let mut cfg = cached_cfg(&dir, threads);
        cfg.aig_rewrite_passes -= 1;
        let replay = run_flow(&design, &cfg).unwrap();
        assert!(
            counter(&replay, "cache.substage_hits") >= 1,
            "sub-stage replay must engage at {threads} threads"
        );
        assert!(
            reference.same_qor(&replay),
            "sub-stage replay at {threads} threads must be bit-identical to uncached"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn cache_is_bypassed_under_fault_injection() {
    // Injected faults must exercise the real stage bodies; a cached replay
    // would skip the code path under test.
    let dir = scratch("faults");
    let design = smoke_design();
    let _ = run_flow(&design, &cached_cfg(&dir, 1)).unwrap();

    let mut cfg = cached_cfg(&dir, 1);
    cfg.fault_plan = Some(FaultPlan::new(7).with("7_route", Some(0), Fault::Degrade));
    let injected = run_flow(&design, &cfg).unwrap();
    assert_eq!(counter(&injected, "cache.hits"), 0, "fault plans bypass the cache");
    assert!(
        !injected.stage_status["7_route"].is_clean(),
        "the injected degradation must actually land"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any netlist, any seed: a warm re-run replays the cold QoR exactly.
    #[test]
    fn warm_replay_is_exact_for_arbitrary_netlists(
        gates in 40usize..160,
        design_seed in 0u64..1_000,
        flow_seed in 0u64..1_000,
    ) {
        let design = generate::random_logic(generate::RandomLogicConfig {
            gates,
            seed: design_seed,
            ..Default::default()
        })
        .unwrap();
        let dir = scratch("prop");
        let mut cfg = cached_cfg(&dir, 2);
        cfg.seed = flow_seed;
        let cold = run_flow(&design, &cfg).unwrap();
        let warm = run_flow(&design, &cfg).unwrap();
        prop_assert_eq!(counter(&warm, "cache.misses"), 0);
        prop_assert!(cold.same_qor(&warm));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
