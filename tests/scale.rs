//! Scale-tier stress tests: the 10⁵-instance mesh through all 11 supervised
//! stages, bit-identical across thread counts, resumable mid-flow, warm-cache
//! replayable, and inside its peak-RSS budget.
//!
//! The 10⁵ tests are `#[ignore]`d (minutes of release wall clock — run with
//! `cargo test --release --test scale -- --ignored`); the 10⁴ mini tier runs
//! in tier-1 release builds and is exercised in every `scripts/check.sh` run
//! through the `experiments scale` smoke gate. Debug builds skip the mini
//! tier too — an unoptimized 10⁴ route is minutes of wall clock — and keep
//! only the small-mesh checks.

use eda::core::{
    read_peak_rss_bytes, run_flow, Fault, FaultPlan, FlowConfig, FlowReport, Metric, SpanKind,
    STAGES,
};
use eda::netlist::{generate, Netlist};
use eda::tech::Node;
use std::path::PathBuf;

/// Mini tier: 10⁴ instances, seconds in release.
const MINI: usize = 10_000;
/// Stress tier: ~10⁵ instances.
const STRESS: usize = 100_000;
/// Peak-RSS ceiling for the 10⁵ tier, both runs of the process included.
/// Measured ~0.6 GB on Linux; the bar catches superlinear regressions
/// (a dense per-search grid or an AoS netlist blows well past it).
const STRESS_RSS_BUDGET_MB: u64 = 1536;

fn scratch_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("eda_scale_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn cleanup(d: &PathBuf) {
    let _ = std::fs::remove_dir_all(d);
}

fn run_tier(design: &Netlist, instances: usize, threads: usize) -> FlowReport {
    let mut cfg = FlowConfig::scale_2016(Node::N28, instances);
    cfg.threads = threads;
    run_flow(design, &cfg).unwrap_or_else(|e| panic!("scale flow at {threads} threads: {e}"))
}

fn assert_scale_invariants(report: &FlowReport, label: &str) {
    assert_eq!(report.stage_status.len(), STAGES.len(), "{label}: missing stages");
    for stage in STAGES {
        assert!(report.stage_status.contains_key(stage), "{label}: no status for {stage}");
    }
    assert_eq!(report.overflow, 0, "{label}: routing left overflow");
    let gauge = |name: &str| match report.telemetry.metrics.get(name) {
        Some(Metric::Gauge(g)) => *g,
        _ => 0.0,
    };
    let window = gauge("route.window_peak_cells");
    let dense = gauge("route.dense_grid_cells");
    assert!(window > 0.0 && dense > 0.0, "{label}: windowed-routing gauges missing");
    assert!(
        window < dense,
        "{label}: windowed search materialized the dense grid ({window} >= {dense})"
    );
}

/// Per-stage peak-RSS telemetry: present on every stage span, monotone in
/// stage order (VmHWM is a high-water mark) up to kernel sampling jitter,
/// and bounded by `budget_mb`. The jitter allowance exists because Linux
/// folds per-thread RSS counters into `/proc/self/status` lazily (every
/// ~64 page faults), so two nearby reads can disagree by a few hundred KB
/// in either direction.
fn assert_rss_profile(report: &FlowReport, budget_mb: u64, label: &str) {
    const JITTER: u64 = 8 << 20;
    let mut peak = 0u64;
    let mut seen = 0usize;
    for (span, wall) in report.telemetry.spans.iter().zip(&report.telemetry.wall) {
        if span.kind != SpanKind::Stage {
            continue;
        }
        seen += 1;
        assert!(wall.peak_rss_bytes > 0, "{label}: {} has no RSS sample", span.name);
        assert!(
            wall.peak_rss_bytes + JITTER >= peak,
            "{label}: peak RSS not monotone at {} ({} far below prior peak {peak})",
            span.name,
            wall.peak_rss_bytes
        );
        peak = peak.max(wall.peak_rss_bytes);
    }
    assert!(seen > 0, "{label}: no stage spans in telemetry");
    let budget = budget_mb << 20;
    assert!(
        peak <= budget,
        "{label}: peak RSS {} MB over the {budget_mb} MB budget",
        peak >> 20
    );
}

/// The mini tier (10⁴ instances) completes all 11 stages overflow-free with
/// bit-identical QoR at 1, 2, 4, and 8 worker threads, within a conservative
/// RSS budget. The thread sweep is the region-partitioned router's seam
/// contract under real load: worker count changes which regions route
/// concurrently but never the canonical commit order. Release-only: this is
/// the fast gate `scripts/check.sh` mirrors.
#[test]
#[cfg_attr(debug_assertions, ignore = "10^4 flow is minutes unoptimized; run in release")]
fn mini_scale_tier_is_bit_identical_and_bounded() {
    let design = generate::scale_mesh(MINI, 3).unwrap();
    let serial = run_tier(&design, MINI, 1);
    assert_scale_invariants(&serial, "mini serial");
    for threads in [2usize, 4, 8] {
        let par = run_tier(&design, MINI, threads);
        assert!(
            serial.same_qor(&par),
            "mini tier QoR diverged between 1 and {threads} threads"
        );
    }
    assert_rss_profile(&serial, 512, "mini serial");
}

/// RSS telemetry is wall-clock-section-only: two runs whose RSS samples
/// necessarily differ (the second run inherits the first's high-water mark)
/// still compare bit-identical, so the gauge can never leak into golden
/// QoR. Small mesh, runs everywhere including debug.
#[test]
fn peak_rss_is_excluded_from_qor() {
    let design = generate::scale_mesh(1_000, 3).unwrap();
    let a = run_tier(&design, 1_000, 1);
    let ballast: Vec<u8> = vec![0x5a; 64 << 20]; // bump VmHWM between runs
    std::hint::black_box(&ballast[4 << 20]);
    drop(ballast);
    let b = run_tier(&design, 1_000, 1);
    let (ra, rb) = (
        a.telemetry.wall.iter().map(|w| w.peak_rss_bytes).max().unwrap_or(0),
        b.telemetry.wall.iter().map(|w| w.peak_rss_bytes).max().unwrap_or(0),
    );
    assert!(rb >= ra, "VmHWM is monotone across runs in one process");
    assert!(rb > 0, "RSS gauge readable");
    assert!(a.same_qor(&b), "RSS telemetry leaked into QoR");
    assert_rss_profile(&a, 4096, "rss-exclusion run");
}

/// The 10⁵ tier: all 11 stages, overflow-free, bit-identical at 1 and 4
/// worker threads, peak RSS inside the blessed budget.
#[test]
#[ignore = "10^5 tier: minutes of release wall clock"]
fn stress_tier_100k_is_bit_identical_across_threads() {
    let design = generate::scale_mesh(STRESS, 3).unwrap();
    let serial = run_tier(&design, STRESS, 1);
    assert_scale_invariants(&serial, "stress serial");
    assert_rss_profile(&serial, STRESS_RSS_BUDGET_MB, "stress serial");
    let par = run_tier(&design, STRESS, 4);
    assert!(serial.same_qor(&par), "stress tier QoR diverged between 1 and 4 threads");
    assert!(
        read_peak_rss_bytes() <= STRESS_RSS_BUDGET_MB << 20,
        "process peak RSS blew the {STRESS_RSS_BUDGET_MB} MB budget"
    );
}

/// Kill the 10⁵ flow mid-way (permanent injected failure at the route
/// stage), resume from the checkpoint, and the final QoR is bit-identical
/// to an uninterrupted run.
#[test]
#[ignore = "10^5 tier: minutes of release wall clock"]
fn stress_tier_100k_checkpoint_resumes_bit_identically() {
    let design = generate::scale_mesh(STRESS, 3).unwrap();
    let uninterrupted = run_tier(&design, STRESS, 4);

    let dir = scratch_dir("resume_100k");
    let mut cfg = FlowConfig::scale_2016(Node::N28, STRESS);
    cfg.threads = 4;
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.fault_plan = Some(FaultPlan::new(3).with("7_route", None, Fault::Fail));
    let err = run_flow(&design, &cfg).expect_err("injected permanent route failure");
    assert_eq!(err.stage(), Some("7_route"));

    let mut resumed_cfg = FlowConfig::scale_2016(Node::N28, STRESS);
    resumed_cfg.threads = 4;
    resumed_cfg.checkpoint_dir = Some(dir.clone());
    resumed_cfg.resume = true;
    let resumed = run_flow(&design, &resumed_cfg).expect("resume from mid-flow checkpoint");
    assert!(
        resumed.same_qor(&uninterrupted),
        "resumed 10^5 flow drifted from the uninterrupted run"
    );
    cleanup(&dir);
}

/// Warm-cache replay at 10⁵: a second run over the same content-addressed
/// stage cache replays every stage bit-identically without recomputing.
#[test]
#[ignore = "10^5 tier: minutes of release wall clock"]
fn stress_tier_100k_warm_cache_replays_bit_identically() {
    let design = generate::scale_mesh(STRESS, 3).unwrap();
    let dir = scratch_dir("cache_100k");
    let mut cfg = FlowConfig::scale_2016(Node::N28, STRESS);
    cfg.threads = 4;
    cfg.cache_dir = Some(dir.clone());
    let cold = run_flow(&design, &cfg).expect("cold scale flow");
    let warm = run_flow(&design, &cfg).expect("warm scale flow");
    let counter = |r: &FlowReport, name: &str| match r.telemetry.metrics.get(name) {
        Some(Metric::Counter(n)) => *n,
        _ => 0,
    };
    assert_eq!(counter(&warm, "cache.errors"), 0, "warm replay hit corrupt entries");
    assert!(
        counter(&warm, "cache.hits") > counter(&cold, "cache.hits"),
        "warm run replayed nothing from the stage cache"
    );
    assert!(warm.same_qor(&cold), "warm-cache replay drifted from the cold run");
    cleanup(&dir);
}
