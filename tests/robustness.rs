//! Supervised-flow robustness: the deterministic fault-injection matrix,
//! checkpoint/resume bit-identity, and the no-collateral-damage property
//! (an injected fault never changes the QoR of untouched stages).

use eda::core::{run_flow, Fault, FaultPlan, FlowConfig, FlowError, FlowReport, StageOutcome, STAGES};
use eda::netlist::{generate, Netlist};
use eda::tech::Node;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

fn design() -> Netlist {
    generate::switch_fabric(3, 2).unwrap()
}

/// A fresh scratch directory under the system temp dir; removed by the
/// caller via `cleanup`.
fn scratch_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("eda_robustness_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn cleanup(d: &PathBuf) {
    let _ = std::fs::remove_dir_all(d);
}

#[test]
fn every_stage_reports_a_status_at_four_threads() {
    let d = design();
    let mut cfg = FlowConfig::advanced_2016(Node::N28);
    cfg.threads = 4;
    let report = run_flow(&d, &cfg).unwrap();
    assert_eq!(report.stage_status.len(), STAGES.len());
    for stage in STAGES {
        assert!(report.stage_status.contains_key(stage), "missing status for {stage}");
    }
}

/// Every stage × every fault kind at invocation 0: the flow either recovers
/// (run succeeds and the stage carries a typed non-panic outcome) or fails
/// with a typed error naming the stage. At 28nm the litho stage is skipped,
/// so it gets its own matrix entry at 10nm below.
#[test]
fn fault_matrix_recovers_or_reports_typed_errors() {
    let d = design();
    for stage in STAGES {
        for fault in [Fault::Fail, Fault::Timeout, Fault::Degrade] {
            let mut cfg = FlowConfig::advanced_2016(Node::N28);
            cfg.fault_plan = Some(FaultPlan::new(7).with(stage, Some(0), fault));
            match run_flow(&d, &cfg) {
                Ok(report) => {
                    let status = &report.stage_status[stage];
                    assert!(status.attempts <= 2, "{stage} {fault} used {} attempts", status.attempts);
                }
                Err(e) => {
                    assert_eq!(e.stage(), Some(stage), "{stage} {fault}: error blamed {:?}", e.stage());
                    assert!(e.partial().is_some(), "{stage} {fault}: no salvageable state");
                }
            }
        }
    }
}

#[test]
fn fault_matrix_covers_litho_at_ten_nanometres() {
    let d = design();
    for fault in [Fault::Fail, Fault::Timeout, Fault::Degrade] {
        let mut cfg = FlowConfig::advanced_2016(Node::N10);
        cfg.fault_plan = Some(FaultPlan::new(7).with("8_litho", Some(0), fault));
        let report = run_flow(&d, &cfg)
            .unwrap_or_else(|e| panic!("litho {fault} should be survivable: {e}"));
        let status = &report.stage_status["8_litho"];
        assert!(
            !matches!(status.outcome, StageOutcome::Skipped { .. }),
            "litho must actually run at 10nm"
        );
    }
}

/// A stage that fails on every attempt exhausts its budget and surfaces a
/// typed error carrying the stage name and the progress made before it.
#[test]
fn persistent_failure_exhausts_the_budget() {
    let d = design();
    let mut cfg = FlowConfig::advanced_2016(Node::N28);
    cfg.fault_plan = Some(FaultPlan::new(7).with("4_place", None, Fault::Fail));
    let err = run_flow(&d, &cfg).expect_err("a permanently failing stage cannot complete");
    match &err {
        FlowError::BudgetExhausted { stage, attempts, partial, .. } => {
            assert_eq!(*stage, "4_place");
            assert_eq!(*attempts, 2);
            assert!(partial.statuses.contains_key("1_synthesis"));
            assert!(!partial.statuses.contains_key("4_place"));
        }
        other => panic!("expected BudgetExhausted, got {other}"),
    }
}

/// The resume contract: kill the flow after any stage, rerun with
/// `resume: true`, and the final report is bit-identical to an uninterrupted
/// run — at one worker thread and at four.
#[test]
fn killed_flow_resumes_bit_identically_after_every_stage() {
    let d = design();
    for threads in [1usize, 4] {
        let mut base = FlowConfig::advanced_2016(Node::N10);
        base.threads = threads;
        let uninterrupted = run_flow(&d, &base).unwrap();

        // Killing "after stage k" = a permanent injected failure on the next
        // stage, with checkpointing on. Every stage of the 10nm advanced
        // flow actually executes, so each kill point is reachable.
        for kill_stage in &STAGES[1..] {
            let dir = scratch_dir(&format!("resume_t{threads}_{kill_stage}"));
            let mut cfg = base.clone();
            cfg.checkpoint_dir = Some(dir.clone());
            cfg.fault_plan = Some(FaultPlan::new(3).with(kill_stage, None, Fault::Fail));
            let err = run_flow(&d, &cfg)
                .expect_err("the injected permanent failure must kill the flow");
            assert_eq!(err.stage(), Some(*kill_stage));
            assert!(
                err.partial().and_then(|p| p.checkpoint.as_ref()).is_some(),
                "killed flow must point at its checkpoint"
            );

            let mut resumed_cfg = base.clone();
            resumed_cfg.checkpoint_dir = Some(dir.clone());
            resumed_cfg.resume = true;
            let resumed = run_flow(&d, &resumed_cfg)
                .unwrap_or_else(|e| panic!("resume after {kill_stage} failed: {e}"));
            assert!(
                resumed.same_qor(&uninterrupted),
                "resume after kill at {kill_stage} (threads={threads}) drifted from the uninterrupted run"
            );
            cleanup(&dir);
        }
    }
}

#[test]
fn resume_without_a_checkpoint_runs_fresh() {
    let d = design();
    let dir = scratch_dir("fresh");
    let mut cfg = FlowConfig::advanced_2016(Node::N28);
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.resume = true;
    let a = run_flow(&d, &cfg).unwrap();
    let b = run_flow(&d, &FlowConfig::advanced_2016(Node::N28)).unwrap();
    assert!(a.same_qor(&b));
    cleanup(&dir);
}

#[test]
fn resume_under_a_different_config_starts_fresh_in_its_own_namespace() {
    // Checkpoint files are namespaced by config fingerprint, so a resume
    // under a drifted config never even sees the old file: it starts fresh
    // in its own namespace and leaves the original checkpoint intact —
    // which is exactly what lets concurrent requests share a checkpoint
    // dir (tests/server.rs).
    let d = design();
    let dir = scratch_dir("mismatch");
    let mut cfg = FlowConfig::advanced_2016(Node::N28);
    cfg.checkpoint_dir = Some(dir.clone());
    run_flow(&d, &cfg).unwrap();

    let mut other = cfg.clone();
    other.resume = true;
    other.seed = 999;
    let fresh = run_flow(&d, &other).expect("a foreign checkpoint must not block the run");
    let mut solo = other.clone();
    solo.checkpoint_dir = None;
    solo.resume = false;
    assert!(
        fresh.same_qor(&run_flow(&d, &solo).unwrap()),
        "the drifted config ran fresh, untainted by the original checkpoint"
    );
    let flowcks = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "flowck"))
        .count();
    assert_eq!(flowcks, 2, "each config keeps its own checkpoint file");
    cleanup(&dir);
}

#[test]
fn corrupt_checkpoint_is_a_typed_error() {
    let d = design();
    let dir = scratch_dir("corrupt");
    let mut cfg = FlowConfig::advanced_2016(Node::N28);
    cfg.checkpoint_dir = Some(dir.clone());
    run_flow(&d, &cfg).unwrap();

    let ck = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .find(|e| e.path().extension().is_some_and(|x| x == "flowck"))
        .expect("a checkpoint was written")
        .path();
    std::fs::write(&ck, "eda-flowck v1\nnot a fingerprint\n").unwrap();

    cfg.resume = true;
    match run_flow(&d, &cfg) {
        Err(FlowError::ResumeCorrupt { .. }) => {}
        Ok(_) => panic!("a corrupt checkpoint must not be silently accepted"),
        Err(other) => panic!("expected ResumeCorrupt, got {other}"),
    }
    cleanup(&dir);
}

/// The clean 28nm advanced report, computed once for the property below.
fn clean_report() -> &'static FlowReport {
    static CLEAN: OnceLock<FlowReport> = OnceLock::new();
    CLEAN.get_or_init(|| run_flow(&design(), &FlowConfig::advanced_2016(Node::N28)).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// No collateral damage: a single injected fault makes the supervisor
    /// retry or degrade the targeted stage, but every QoR number of the
    /// flow stays bit-identical — recovery parameters adapt only to
    /// *observed* failures, never to injected ones, so untouched stages see
    /// exactly the inputs they would in a clean run.
    #[test]
    fn single_injected_fault_never_changes_qor(stage_idx in 0usize..STAGES.len(), kind in 0u8..3) {
        let fault = match kind {
            0 => Fault::Fail,
            1 => Fault::Timeout,
            _ => Fault::Degrade,
        };
        let stage = STAGES[stage_idx];
        let mut cfg = FlowConfig::advanced_2016(Node::N28);
        cfg.fault_plan = Some(FaultPlan::new(11).with(stage, Some(0), fault));
        let faulted = run_flow(&design(), &cfg)
            .unwrap_or_else(|e| panic!("single fault on {stage} must be survivable: {e}"));
        // Same QoR modulo the targeted stage's own status bookkeeping.
        let mut masked = faulted.clone();
        masked.stage_status = clean_report().stage_status.clone();
        prop_assert!(
            masked.same_qor(clean_report()),
            "fault {fault} on {stage} leaked into QoR"
        );
    }
}
