//! Serial-vs-parallel determinism for every kernel behind the `eda-par`
//! layer: fault simulation, OPC, routing, and the full flow must be
//! bit-identical for any thread count (the contract in DESIGN.md's
//! "Parallel execution" section).

use eda::core::{run_flow, FlowConfig};
use eda::dft::{fault_list, fault_sim, fault_sim_threaded, random_patterns, CombView};
use eda::litho::{run_opc, run_opc_stats, OpcConfig, OpticalModel};
use eda::netlist::generate;
use eda::place::{place_global, Die, GlobalConfig};
use eda::route::{route, route_stats, RouteConfig};
use eda::tech::Node;
use proptest::prelude::*;

/// The full flow at 2 and 8 worker threads reproduces the 1-thread QoR
/// exactly, down to the last f64 bit.
#[test]
fn full_flow_qor_is_identical_at_any_thread_count() {
    let d = generate::random_logic(generate::RandomLogicConfig {
        gates: 200,
        seed: 11,
        ..Default::default()
    })
    .unwrap();
    let mut cfg = FlowConfig::advanced_2016(Node::N28);
    cfg.threads = 1;
    let base = run_flow(&d, &cfg).unwrap();
    for threads in [2, 8] {
        cfg.threads = threads;
        let r = run_flow(&d, &cfg).unwrap();
        assert_eq!(base.hpwl_um.to_bits(), r.hpwl_um.to_bits(), "threads={threads}");
        assert_eq!(base.routed_wirelength, r.routed_wirelength, "threads={threads}");
        assert_eq!(base.vias, r.vias, "threads={threads}");
        assert_eq!(base.overflow, r.overflow, "threads={threads}");
        assert_eq!(base.wns_ps.to_bits(), r.wns_ps.to_bits(), "threads={threads}");
        assert_eq!(base.test_coverage.to_bits(), r.test_coverage.to_bits(), "threads={threads}");
        assert_eq!(base.dynamic_mw.to_bits(), r.dynamic_mw.to_bits(), "threads={threads}");
        assert_eq!(base.masks, r.masks, "threads={threads}");
        assert_eq!(base.hold_violations, r.hold_violations, "threads={threads}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Fault-simulation coverage maps are thread-invariant on arbitrary
    /// designs and pattern sets.
    #[test]
    fn fault_sim_coverage_is_thread_invariant(
        gates in 80usize..200,
        seed in 0u64..20,
        npat in 32usize..96,
    ) {
        let d = generate::random_logic(generate::RandomLogicConfig {
            gates,
            seed,
            ..Default::default()
        })
        .unwrap();
        let view = CombView::new(&d).unwrap();
        let faults = fault_list(&d);
        let pats = random_patterns(&view, npat, seed ^ 0x5eed);
        let serial = fault_sim(&d, &view, &faults, &pats);
        for threads in [2usize, 8] {
            let (par, _) = fault_sim_threaded(&d, &view, &faults, &pats, threads);
            prop_assert_eq!(&par.detected, &serial.detected, "threads={}", threads);
            prop_assert_eq!(par.num_detected, serial.num_detected);
        }
    }

    /// OPC masks and per-iteration EPE fields are bit-identical across
    /// thread counts for arbitrary line/space targets.
    #[test]
    fn opc_epe_field_is_thread_invariant(
        pitch in 90.0f64..150.0,
        lines in 4usize..12,
    ) {
        let target: Vec<(f64, f64)> = (0..lines)
            .map(|i| {
                let x = 300.0 + i as f64 * pitch;
                (x, x + pitch / 2.0)
            })
            .collect();
        let extent = 600.0 + pitch * lines as f64;
        let model = OpticalModel::default();
        let serial = run_opc(&model, &target, extent, &OpcConfig::default());
        for threads in [2usize, 8] {
            let cfg = OpcConfig { threads, ..Default::default() };
            let (par, _) = run_opc_stats(&model, &target, extent, &cfg);
            for (a, b) in serial.mask.iter().zip(&par.mask) {
                prop_assert_eq!(a.0.to_bits(), b.0.to_bits(), "threads={}", threads);
                prop_assert_eq!(a.1.to_bits(), b.1.to_bits(), "threads={}", threads);
            }
            for (a, b) in serial.rms_epe_history.iter().zip(&par.rms_epe_history) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "threads={}", threads);
            }
        }
    }

    /// Routing outcomes (wirelength, vias, overflow, work counters) are
    /// thread-invariant on arbitrary placed designs.
    #[test]
    fn route_outcome_is_thread_invariant(gates in 100usize..220, seed in 0u64..15) {
        let d = generate::random_logic(generate::RandomLogicConfig {
            gates,
            seed,
            ..Default::default()
        })
        .unwrap();
        let die = Die::for_netlist(&d, 0.7);
        let placement = place_global(&d, die, &GlobalConfig::default());
        let serial = route(&d, &placement, &RouteConfig::default());
        for threads in [2usize, 8] {
            let cfg = RouteConfig { threads, ..Default::default() };
            let (par, _) = route_stats(&d, &placement, &cfg);
            prop_assert_eq!(par.wirelength, serial.wirelength, "threads={}", threads);
            prop_assert_eq!(par.vias, serial.vias, "threads={}", threads);
            prop_assert_eq!(par.overflow, serial.overflow, "threads={}", threads);
            prop_assert_eq!(par.connections, serial.connections);
            prop_assert_eq!(par.linesearch_fallbacks, serial.linesearch_fallbacks);
            prop_assert_eq!(par.cells_expanded, serial.cells_expanded);
            prop_assert_eq!(par.iterations, serial.iterations);
        }
    }
}
