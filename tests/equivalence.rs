//! Functional-equivalence integration tests: every netlist transformation in
//! the workspace must preserve mission-mode behaviour. Verified by
//! bit-parallel co-simulation across transformation pipelines.

use eda::dft::insert_scan;
use eda::logic::{synthesize, MapGoal, SynthesisEffort};
use eda::netlist::{generate, verilog, Library, Netlist};
use eda::power::{implement, insert_clock_gating, PowerDomain, PowerIntent};

/// Compares two netlists on pseudo-random stimulus; `extra_ones` PIs of `b`
/// beyond `a`'s count are driven high (enables), `extra_zeros` driven low.
fn equivalent(a: &Netlist, b: &Netlist, extra_high: usize, extra_low: usize) {
    let k = a.primary_inputs().len();
    assert_eq!(k + extra_high + extra_low, b.primary_inputs().len(), "PI bookkeeping");
    for round in 0..4u64 {
        let pats: Vec<u64> = (0..k)
            .map(|i| 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1 + round * 131))
            .collect();
        let mut bpats = pats.clone();
        bpats.extend(std::iter::repeat_n(!0u64, extra_high));
        bpats.extend(std::iter::repeat_n(0u64, extra_low));
        let (oa, sa) = a.simulate64(&pats, &vec![0; a.flops().len()]);
        let (ob, sb) = b.simulate64(&bpats, &vec![0; b.flops().len()]);
        assert_eq!(oa[..], ob[..oa.len()], "outputs diverge on round {round}");
        assert_eq!(sa, sb, "state diverges on round {round}");
    }
}

#[test]
fn synthesis_pipeline_preserves_function() {
    for seed in [3u64, 14, 25] {
        let d = generate::random_logic(generate::RandomLogicConfig {
            gates: 250,
            seed,
            ..Default::default()
        })
        .unwrap();
        let adv =
            synthesize(&d, Library::generic(), SynthesisEffort::Advanced2016, MapGoal::Area)
                .unwrap();
        equivalent(&d, &adv.netlist, 0, 0);
        let base = synthesize(
            &d,
            Library::nand_inv_2006(),
            SynthesisEffort::Baseline2006,
            MapGoal::Area,
        )
        .unwrap();
        equivalent(&d, &base.netlist, 0, 0);
    }
}

#[test]
fn synthesis_then_scan_then_gating_chain() {
    let d = generate::switch_fabric(3, 3).unwrap();
    let synth =
        synthesize(&d, Library::generic(), SynthesisEffort::Advanced2016, MapGoal::Area).unwrap();
    equivalent(&d, &synth.netlist, 0, 0);
    // Clock gating adds enable PIs (high = transparent).
    let gated = insert_clock_gating(&synth.netlist, 4).unwrap();
    equivalent(&synth.netlist, &gated.netlist, gated.gates_inserted, 0);
    // Scan adds scan_en + scan_ins (low = mission mode).
    let scanned = insert_scan(&gated.netlist, 2).unwrap();
    equivalent(&gated.netlist, &scanned.netlist, 0, 3);
}

#[test]
fn verilog_roundtrip_after_synthesis() {
    let d = generate::array_multiplier(4).unwrap();
    let synth =
        synthesize(&d, Library::generic(), SynthesisEffort::Advanced2016, MapGoal::Delay).unwrap();
    let text = verilog::write_verilog(&synth.netlist);
    let parsed = verilog::parse_verilog(&text, synth.netlist.library().clone()).unwrap();
    equivalent(&synth.netlist, &parsed, 0, 0);
    equivalent(&d, &parsed, 0, 0);
}

#[test]
fn power_intent_implementation_preserves_function() {
    let d = generate::hierarchical_design(3, 60, 7).unwrap();
    let mut intent = PowerIntent::single_domain(0.9);
    let low = intent.add_domain(PowerDomain { name: "LP".into(), vdd_v: 0.6, switchable: true });
    intent.assign_block(&d, "blk0", low);
    let fixed = implement(&d, &intent).unwrap();
    // One iso_en PI, driven high (power on).
    let extra = fixed.netlist.primary_inputs().len() - d.primary_inputs().len();
    equivalent(&d, &fixed.netlist, extra, 0);
}

#[test]
fn formal_ec_verifies_transformation_chain() {
    use eda::logic::{check_equivalence, EcVerdict};
    // Formal (BDD) verification across the same chain the simulation tests
    // cover: synthesis, then clock gating with tied-high enables, then scan
    // with tied-low scan controls.
    let d = generate::switch_fabric(3, 2).unwrap();
    let synth =
        synthesize(&d, Library::generic(), SynthesisEffort::Advanced2016, MapGoal::Area).unwrap();
    assert_eq!(
        check_equivalence(&d, &synth.netlist, &[], &[], 1 << 20).unwrap(),
        EcVerdict::Equivalent
    );
    let gated = insert_clock_gating(&synth.netlist, 4).unwrap();
    let base_pis = synth.netlist.primary_inputs().len();
    let ties_high: Vec<usize> = (base_pis..base_pis + gated.gates_inserted).collect();
    assert_eq!(
        check_equivalence(&synth.netlist, &gated.netlist, &ties_high, &[], 1 << 20).unwrap(),
        EcVerdict::Equivalent
    );
    let scanned = insert_scan(&gated.netlist, 2).unwrap();
    let gated_pis = gated.netlist.primary_inputs().len();
    let ties_low: Vec<usize> = (gated_pis..gated_pis + 3).collect(); // scan_en + 2 scan_in
    assert_eq!(
        check_equivalence(&gated.netlist, &scanned.netlist, &[], &ties_low, 1 << 20).unwrap(),
        EcVerdict::Equivalent
    );
}

#[test]
fn formal_ec_catches_an_injected_bug() {
    use eda::logic::{check_equivalence, EcVerdict};
    use eda::netlist::{CellFunction, Netlist};
    // Mutate one gate of a synthesized design and prove non-equivalence.
    let d = generate::ripple_carry_adder(4).unwrap();
    let mut broken = Netlist::new("broken");
    // Rebuild the adder but with the final carry using OR instead of MAJ.
    let a: Vec<_> = (0..4).map(|i| broken.add_input(format!("a{i}"))).collect();
    let b: Vec<_> = (0..4).map(|i| broken.add_input(format!("b{i}"))).collect();
    let mut carry = broken.add_input("cin");
    for i in 0..4 {
        let axb = broken.add_gate_fn(format!("x1_{i}"), CellFunction::Xor2, &[a[i], b[i]]).unwrap();
        let sum = broken.add_gate_fn(format!("x2_{i}"), CellFunction::Xor2, &[axb, carry]).unwrap();
        let cy = if i == 3 {
            let t = broken.add_gate_fn("bad_or", CellFunction::Or(2), &[a[i], b[i]]).unwrap();
            broken.add_gate_fn("bad_or2", CellFunction::Or(2), &[t, carry]).unwrap()
        } else {
            broken.add_gate_fn(format!("mj_{i}"), CellFunction::Maj3, &[a[i], b[i], carry]).unwrap()
        };
        broken.add_output(format!("sum{i}"), sum);
        carry = cy;
    }
    broken.add_output("cout", carry);
    match check_equivalence(&d, &broken, &[], &[], 1 << 20).unwrap() {
        EcVerdict::Counterexample(cex) => {
            let (oa, _) = d.simulate(&cex, &[]);
            let (ob, _) = broken.simulate(&cex, &[]);
            assert_ne!(oa, ob, "counterexample must actually distinguish");
        }
        other => panic!("expected counterexample, got {other:?}"),
    }
}

#[test]
fn polarity_library_mapping_is_equivalent() {
    let d = generate::parity_tree(24).unwrap();
    let pol = synthesize(
        &d,
        Library::controlled_polarity(),
        SynthesisEffort::Advanced2016,
        MapGoal::Area,
    )
    .unwrap();
    equivalent(&d, &pol.netlist, 0, 0);
}
