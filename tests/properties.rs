//! Property-based tests (proptest) on the workspace's core invariants.

use eda::litho::{decompose, ConflictGraph, Layout};
use eda::logic::{isop, Aig, Cover, Cube, TruthTable};
use eda::netlist::generate;
use eda::place::{anneal, place_global, AnnealConfig, Die, GlobalConfig};
use eda::route::{mikami_tabuchi, GCell, RoutingGrid, RuleDeck};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ISOP of any function is exact: the cover evaluates to the function.
    #[test]
    fn isop_exact_for_arbitrary_functions(bits in any::<u64>(), n in 1usize..=4) {
        let f = TruthTable::from_bits(n, bits);
        let cover = isop(&f, &f);
        for m in 0..(1usize << n) {
            let a: Vec<bool> = (0..n).map(|v| m >> v & 1 == 1).collect();
            prop_assert_eq!(cover.eval(&a), f.eval(&a));
        }
    }

    /// Espresso minimization preserves the function and never grows cost.
    #[test]
    fn espresso_sound_and_never_worse(minterms in proptest::collection::vec(0usize..32, 0..24)) {
        let on = Cover::from_minterms(5, minterms.iter().copied());
        let out = eda::logic::espresso::minimize(&on, &Cover::new(5));
        for m in 0..32usize {
            let a: Vec<bool> = (0..5).map(|v| m >> v & 1 == 1).collect();
            prop_assert_eq!(out.cover.eval(&a), on.eval(&a), "minterm {}", m);
        }
        prop_assert!(out.cover.len() <= on.len());
    }

    /// Cube containment is consistent with evaluation.
    #[test]
    fn cube_containment_semantics(
        lits_a in proptest::collection::vec((0usize..6, any::<bool>()), 0..4),
        lits_b in proptest::collection::vec((0usize..6, any::<bool>()), 0..4),
    ) {
        let mut a = Cube::full(6);
        for (v, val) in lits_a { a = a.with_literal(v, val); }
        let mut b = Cube::full(6);
        for (v, val) in lits_b { b = b.with_literal(v, val); }
        if a.contains(&b) {
            // Every minterm of b is in a.
            for m in 0..64usize {
                let assignment: Vec<bool> = (0..6).map(|v| m >> v & 1 == 1).collect();
                if b.eval(&assignment) {
                    prop_assert!(a.eval(&assignment));
                }
            }
        }
    }

    /// AIG construction from any netlist is simulation-equivalent.
    #[test]
    fn aig_roundtrip_equivalence(seed in 0u64..50, gates in 50usize..200) {
        let d = generate::random_logic(generate::RandomLogicConfig {
            gates,
            seed,
            flop_fraction: 0.0,
            ..Default::default()
        }).unwrap();
        let (aig, _) = Aig::from_netlist(&d).unwrap();
        let rewritten = aig.rewrite();
        let pats: Vec<u64> = (0..aig.num_pis())
            .map(|i| seed.wrapping_mul(0x2545_F491_4F6C_DD1D).rotate_left(i as u32))
            .collect();
        let (golden, _) = d.simulate64(&pats, &[]);
        prop_assert_eq!(&aig.simulate64(&pats), &golden);
        prop_assert_eq!(&rewritten.simulate64(&pats), &golden);
        prop_assert!(rewritten.num_ands() <= aig.num_ands());
    }

    /// DSATUR always produces a proper colouring.
    #[test]
    fn coloring_always_proper(count in 5usize..40, seed in 0u64..25, pitch in 30.0f64..120.0) {
        let layout = Layout::random_wires(count, pitch, 2500.0, seed);
        let g = ConflictGraph::build(&layout, 80.0);
        let colors = g.dsatur();
        for v in 0..g.nodes {
            for &w in g.neighbours(v) {
                prop_assert_ne!(colors[v], colors[w as usize]);
            }
        }
    }

    /// Legal decompositions never assign conflicting features one mask.
    #[test]
    fn decomposition_legality(count in 5usize..25, seed in 0u64..20) {
        let layout = Layout::random_wires(count, 60.0, 2000.0, seed);
        let d = decompose(&layout, 3, 80.0, 6);
        if d.legal {
            let g = ConflictGraph::build(&d.layout, 80.0);
            for v in 0..g.nodes {
                for &w in g.neighbours(v) {
                    prop_assert_ne!(d.colors[v], d.colors[w as usize]);
                }
            }
            prop_assert!(d.masks <= 3);
        }
    }

    /// Line-search paths, when found, are connected and end-to-end.
    #[test]
    fn linesearch_paths_well_formed(
        sx in 0u32..20, sy in 0u32..20, dx in 0u32..20, dy in 0u32..20,
    ) {
        let grid = RoutingGrid::new(20, 20, &RuleDeck::simple(6));
        let src = GCell::new(sx, sy);
        let dst = GCell::new(dx, dy);
        if let Some((path, _)) = mikami_tabuchi(&grid, src, dst, 8) {
            prop_assert_eq!(path[0], src);
            prop_assert_eq!(*path.last().unwrap(), dst);
            for w in path.windows(2) {
                prop_assert_eq!(w[0].manhattan(&w[1]), 1);
            }
        } else {
            // On an empty grid level-0 probes always cross.
            prop_assert!(false, "line search must succeed on an empty grid");
        }
    }

    /// Annealing never loses placement legality (one cell per site).
    #[test]
    fn annealing_keeps_legality(seed in 0u64..10) {
        let d = generate::parity_tree(32).unwrap();
        let die = Die::for_netlist(&d, 0.7);
        let mut p = place_global(&d, die, &GlobalConfig { iterations: 3, seed });
        anneal(&d, &mut p, &AnnealConfig { moves_per_cell: 20, seed, ..Default::default() }, None, None);
        let mut seen = std::collections::HashSet::new();
        for i in 0..d.num_instances() {
            let pos = p.position(eda::netlist::InstId::from_index(i));
            let key = ((pos.x * 1e3) as i64, (pos.y * 1e3) as i64);
            prop_assert!(seen.insert(key), "overlap at {:?}", pos);
        }
    }

    /// Netlist generators always produce valid netlists.
    #[test]
    fn generators_always_valid(seed in 0u64..40, gates in 20usize..150) {
        let d = generate::random_logic(generate::RandomLogicConfig {
            gates,
            seed,
            ..Default::default()
        }).unwrap();
        prop_assert!(d.validate().is_ok());
        let h = generate::hierarchical_design(1 + (seed % 4) as usize, gates.min(60), seed).unwrap();
        prop_assert!(h.validate().is_ok());
    }

    /// Region-partitioned routing is schedule-invariant: perturbing the
    /// region size (and the worker count) never changes any QoR bit — the
    /// wirelength, vias, overflow trajectory, and search work all match the
    /// canonical single-region serial schedule exactly. Only the partition
    /// diagnostics (`regions`, `local_commits`, `seam_conflicts`,
    /// `negotiation_waves`) are allowed to depend on the region shape.
    #[test]
    fn region_partition_never_changes_route_qor(
        seed in 0u64..10, gates in 60usize..140,
        region in 2u32..24, threads in 1usize..5,
    ) {
        use eda::route::{route, RouteAlgorithm, RouteConfig};
        let d = generate::random_logic(generate::RandomLogicConfig {
            gates,
            seed,
            ..Default::default()
        }).unwrap();
        let die = Die::for_netlist(&d, 0.7);
        let p = place_global(&d, die, &GlobalConfig { iterations: 3, seed });
        let base = RouteConfig {
            algorithm: RouteAlgorithm::AStar,
            deck: RuleDeck::simple(6),
            grid_cells: 24,
            ripup_iterations: 4,
            threads: 1,
            window_margin: 6,
            // One region spanning the whole grid: the canonical serial
            // schedule every partition must reproduce.
            region_size: 4096,
        };
        let want = route(&d, &p, &base);
        prop_assert_eq!(want.regions, 1);
        let cfg = RouteConfig { region_size: region, threads, ..base };
        let got = route(&d, &p, &cfg);
        prop_assert_eq!(got.wirelength, want.wirelength);
        prop_assert_eq!(got.vias, want.vias);
        prop_assert_eq!(got.overflow, want.overflow);
        prop_assert_eq!(got.iterations, want.iterations);
        prop_assert_eq!(got.cells_expanded, want.cells_expanded);
        prop_assert_eq!(got.linesearch_fallbacks, want.linesearch_fallbacks);
        prop_assert_eq!(&got.ripup_overflow, &want.ripup_overflow);
        prop_assert_eq!(
            got.local_commits + got.seam_conflicts,
            want.local_commits + want.seam_conflicts,
            "total routings are partition-invariant"
        );
    }

    /// Hierarchical mesh fabrics are DAG-legal (validate() proves no
    /// combinational cycle and every connection in-bounds) at every shape
    /// and seed, and every instance carries its tile's block label.
    #[test]
    fn mesh_fabrics_are_dag_legal(
        rows in 1usize..5, cols in 1usize..5, tile_gates in 1usize..60, seed in 0u64..20,
    ) {
        let m = generate::mesh_fabric(rows, cols, tile_gates, 4, seed).unwrap();
        prop_assert!(m.validate().is_ok());
        let labelled = m.instances().filter(|(_, i)| i.block().is_some()).count();
        prop_assert!(labelled > 0, "mesh instances must carry tile labels");
    }

    /// The mesh size cap is respected for any cap that admits the shape,
    /// and `scale_mesh` lands within a few percent of its target while
    /// never exceeding the global ceiling.
    #[test]
    fn mesh_size_caps_respected(
        rows in 1usize..4, cols in 1usize..4, tile_gates in 50usize..400,
        cap_slack in 0usize..200, seed in 0u64..10,
    ) {
        // Smallest mesh of this shape: one gate per tile plus spine/flops.
        let floor = generate::mesh_fabric_with_cap(rows, cols, 1, 4, seed, usize::MAX)
            .unwrap()
            .num_instances();
        let cap = floor + cap_slack;
        let m = generate::mesh_fabric_with_cap(rows, cols, tile_gates, 4, seed, cap).unwrap();
        prop_assert!(m.num_instances() <= cap, "{} > cap {cap}", m.num_instances());
        prop_assert!(m.validate().is_ok());
    }

    /// `scale_mesh` tracks its target within tolerance and stays DAG-legal.
    #[test]
    fn scale_mesh_tracks_target(target in 5_000usize..40_000, seed in 0u64..8) {
        let m = generate::scale_mesh(target, seed).unwrap();
        prop_assert!(m.validate().is_ok());
        let n = m.num_instances();
        prop_assert!(n <= generate::MAX_SCALE_INSTANCES);
        // Within 15% of the target at 10⁴-scale (the tiling quantizes).
        prop_assert!(
            n * 100 >= target * 85 && n * 100 <= target * 115,
            "scale_mesh({target}) produced {n} instances"
        );
    }
}
