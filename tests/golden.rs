//! Golden-snapshot lock on the smoke flow's QoR and telemetry.
//!
//! [`FlowReport::golden_text`] serialises everything deterministic about a
//! flow run — QoR figures as exact f64 bits, per-stage outcomes, the full
//! telemetry span tree and metric registry — and excludes everything that
//! may legitimately vary (wall clocks, resolved thread counts). This suite
//! pins that text to `tests/golden/smoke.snap` byte-for-byte and checks it
//! is identical across worker-thread counts, so any QoR or telemetry drift
//! shows up as a one-line diff in CI rather than a silent change.
//!
//! To re-bless after an intentional change: `scripts/bless.sh`
//! (equivalently `BLESS=1 cargo test --release --test golden`).

use eda::core::{run_flow, FlowConfig, FlowReport, SpanKind};
use eda::netlist::generate;
use eda::tech::Node;

/// The flow the snapshot pins: the same smoke configuration `experiments
/// --trace` and `--inject` run (every stage incl. decomposition + OPC).
fn smoke_report(threads: usize) -> FlowReport {
    let design = generate::switch_fabric(3, 3).expect("smoke design generates");
    let mut cfg = FlowConfig::advanced_2016(Node::N10);
    cfg.threads = threads;
    run_flow(&design, &cfg).expect("smoke flow completes")
}

fn snap_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/smoke.snap")
}

/// Point at the first differing line instead of dumping two full snapshots.
fn assert_same_text(want: &str, got: &str, what: &str) {
    if want == got {
        return;
    }
    for (i, (w, g)) in want.lines().zip(got.lines()).enumerate() {
        assert_eq!(w, g, "{what}: first difference at line {}", i + 1);
    }
    panic!(
        "{what}: line count differs (want {}, got {}) — re-bless with scripts/bless.sh if intentional",
        want.lines().count(),
        got.lines().count()
    );
}

/// The deterministic section of the report is byte-identical across thread
/// counts and matches the blessed snapshot. `BLESS=1` rewrites the snapshot
/// instead of comparing.
#[test]
fn golden_snapshot_is_byte_stable_across_thread_counts() {
    let base = smoke_report(1).golden_text();
    for threads in [2, 4, 8] {
        let other = smoke_report(threads).golden_text();
        assert_same_text(&base, &other, &format!("threads=1 vs threads={threads}"));
    }

    let path = snap_path();
    if std::env::var("BLESS").is_ok() {
        std::fs::write(&path, &base).expect("write blessed snapshot");
        eprintln!("blessed {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("no golden snapshot at {} ({e}); run scripts/bless.sh", path.display())
    });
    assert_same_text(&want, &base, "golden snapshot");
}

/// Structural invariants of the telemetry snapshot: the span tree is
/// well-formed (parents precede children, one root flow span, stage spans
/// parented on it), wall data is index-aligned, and every export renders.
#[test]
fn telemetry_snapshot_is_well_formed() {
    let report = smoke_report(1);
    let tel = &report.telemetry;

    assert_eq!(tel.spans.len(), tel.wall.len(), "spans and wall sections are index-aligned");
    let roots: Vec<_> = tel.spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 1, "exactly one root span");
    assert_eq!(roots[0].kind, SpanKind::Flow);
    for (id, span) in tel.spans.iter().enumerate() {
        if let Some(p) = span.parent {
            assert!(p < id, "parent {p} precedes child {id}");
        }
        match span.kind {
            SpanKind::Flow => assert!(span.parent.is_none()),
            SpanKind::Stage => {
                assert_eq!(span.parent, Some(0), "stage `{}` hangs off the flow span", span.name)
            }
            SpanKind::Attempt | SpanKind::Kernel => {
                assert!(span.parent.is_some(), "`{}` has a parent", span.name)
            }
        }
    }
    // Every pipeline stage that ran shows up as a stage span.
    for stage in report.stage_status.keys() {
        assert!(
            tel.spans.iter().any(|s| s.kind == SpanKind::Stage && s.name == *stage),
            "stage `{stage}` has a span"
        );
    }

    // Exports are non-trivial and structurally sound (full JSON validation
    // happens in scripts/check.sh with a real parser).
    let trace = tel.chrome_trace_json();
    assert!(trace.starts_with('{') && trace.trim_end().ends_with('}'));
    assert_eq!(trace.matches("\"ph\":\"X\"").count(), tel.spans.len());
    let metrics = tel.metrics_json();
    assert!(metrics.starts_with('{') && metrics.trim_end().ends_with('}'));
    let folded = tel.folded_stacks();
    assert!(folded.lines().count() > 0);
    for line in folded.lines() {
        let (_, weight) = line.rsplit_once(' ').expect("folded line has a weight");
        weight.parse::<u64>().expect("folded weight is an integer");
    }
}
