//! Property-based round-trip coverage for the netlist checkpoint codec
//! (`eda::netlist::codec`), the layer every flow checkpoint depends on.
//!
//! Three families of properties:
//! 1. `from_text(to_text(n))` reconstructs `n` exactly for arbitrary
//!    generated netlists, and the text form is a fixed point.
//! 2. Truncated or byte-corrupted checkpoint text never panics: it either
//!    parses (corruption can land in a don't-care position, e.g. inside a
//!    name) or returns a typed [`CodecError`].
//! 3. Specific malformed inputs map to the *right* typed error variant.

use eda::netlist::codec::{self, CodecError};
use eda::netlist::{generate, InstId, Netlist, SoaNetlist};
use proptest::prelude::*;

/// An arbitrary netlist via the seeded generator: proptest drives the seed
/// and shape, the generator guarantees structural validity.
fn arb_netlist(seed: u64, gates: usize, flops: bool) -> Netlist {
    generate::random_logic(generate::RandomLogicConfig {
        inputs: 8,
        outputs: 4,
        gates,
        flop_fraction: if flops { 0.2 } else { 0.0 },
        seed,
    })
    .expect("generator emits a valid netlist")
}

/// Field-for-field identity through the public accessors (the serialized
/// fixed point in `roundtrip_identity` covers the rest byte-for-byte).
fn assert_identical(a: &Netlist, b: &Netlist) {
    assert_eq!(a.name(), b.name());
    assert_eq!(a.library().name(), b.library().name());
    assert_eq!(a.block_names(), b.block_names());
    assert_eq!(a.primary_inputs(), b.primary_inputs());
    assert_eq!(a.primary_outputs(), b.primary_outputs());
    assert_eq!(a.num_instances(), b.num_instances());
    assert_eq!(a.num_nets(), b.num_nets());
    for ((ia, inst_a), (ib, inst_b)) in a.instances().zip(b.instances()) {
        assert_eq!(ia, ib);
        assert_eq!(inst_a, inst_b);
    }
    for ((na, net_a), (nb, net_b)) in a.nets().zip(b.nets()) {
        assert_eq!(na, nb);
        assert_eq!(net_a, net_b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Encode/decode is the identity on arbitrary netlists, and encoding is
    /// a fixed point (`to_text . from_text . to_text == to_text`).
    #[test]
    fn roundtrip_identity(seed in 0u64..1000, gates in 10usize..120, flops in any::<bool>()) {
        let n = arb_netlist(seed, gates, flops);
        let text = codec::to_text(&n);
        let back = codec::from_text(&text).expect("round trip parses");
        assert_identical(&n, &back);
        prop_assert_eq!(codec::to_text(&back), text);
    }

    /// Truncating a checkpoint anywhere never panics. (A truncation can
    /// still parse when it cuts exactly at a record boundary the header
    /// counts happen to cover, so the only universal guarantee is no-panic
    /// plus a typed error for strict prefixes that drop whole records.)
    #[test]
    fn truncation_never_panics(seed in 0u64..200, cut_pm in 0u32..1000) {
        let n = arb_netlist(seed, 40, true);
        let text = codec::to_text(&n);
        let cut = (text.len() as u64 * u64::from(cut_pm) / 1000) as usize;
        // The format is ASCII for generated designs, but stay on a char
        // boundary so the slice itself cannot panic for exotic names.
        let cut = (0..=cut).rev().find(|&i| text.is_char_boundary(i)).unwrap_or(0);
        let _ = codec::from_text(&text[..cut]);
    }

    /// Flipping one byte to an arbitrary printable character never panics;
    /// whatever parses is structurally in-bounds by construction.
    #[test]
    fn single_byte_corruption_never_panics(
        seed in 0u64..200,
        pos_pm in 0u32..1000,
        replacement in 0x20u8..0x7f,
    ) {
        let n = arb_netlist(seed, 40, false);
        let mut bytes = codec::to_text(&n).into_bytes();
        let pos = (bytes.len() as u64 * u64::from(pos_pm) / 1000) as usize;
        let pos = pos.min(bytes.len() - 1);
        bytes[pos] = replacement;
        let corrupted = String::from_utf8_lossy(&bytes).into_owned();
        if let Ok(parsed) = codec::from_text(&corrupted) {
            // from_text bounds-checks every index, so anything it accepts
            // must be safe to traverse.
            for (_, inst) in parsed.instances() {
                let _ = parsed.net(inst.output());
            }
        }
    }

    /// SoA flatten → encode → decode → rebuild is the identity, including
    /// block labels (the scale tier's hierarchy survives a checkpoint), and
    /// the SoA text form is a fixed point.
    #[test]
    fn soa_roundtrip_identity(seed in 0u64..200, rows in 1usize..4, tile_gates in 5usize..40) {
        let n = generate::mesh_fabric(rows, rows, tile_gates, 4, seed).unwrap();
        let soa = SoaNetlist::from_netlist(&n);
        let text = soa.to_text();
        let back = SoaNetlist::from_text(&text).expect("soa round trip parses");
        assert_identical(&n, &back.to_netlist());
        prop_assert_eq!(back.to_text(), text);
    }

    /// Truncating an SoA checkpoint anywhere never panics: it either parses
    /// (an exact record boundary) or returns a typed [`SoaCodecError`].
    #[test]
    fn soa_truncation_never_panics(seed in 0u64..100, cut_pm in 0u32..1000) {
        let n = generate::mesh_fabric(2, 2, 20, 4, seed).unwrap();
        let text = SoaNetlist::from_netlist(&n).to_text();
        let cut = (text.len() as u64 * u64::from(cut_pm) / 1000) as usize;
        let cut = (0..=cut).rev().find(|&i| text.is_char_boundary(i)).unwrap_or(0);
        let _ = SoaNetlist::from_text(&text[..cut]);
    }

    /// One corrupted byte in an SoA checkpoint never panics, and whatever
    /// parses converts back to an AoS netlist without panicking either
    /// (from_text re-validates every cross-array index).
    #[test]
    fn soa_corruption_never_panics(
        seed in 0u64..100,
        pos_pm in 0u32..1000,
        replacement in 0x20u8..0x7f,
    ) {
        let n = generate::mesh_fabric(2, 2, 20, 4, seed).unwrap();
        let mut bytes = SoaNetlist::from_netlist(&n).to_text().into_bytes();
        let pos = (bytes.len() as u64 * u64::from(pos_pm) / 1000) as usize;
        let pos = pos.min(bytes.len() - 1);
        bytes[pos] = replacement;
        let corrupted = String::from_utf8_lossy(&bytes).into_owned();
        if let Ok(parsed) = SoaNetlist::from_text(&corrupted) {
            let _ = parsed.to_netlist();
        }
    }
}

#[test]
fn empty_and_garbage_inputs_are_parse_errors() {
    for bad in ["", "garbage", "eda-netlist v2\n", "eda-netlist v1"] {
        match codec::from_text(bad) {
            Err(CodecError::Parse { line, .. }) => assert!(line >= 1),
            other => panic!("{bad:?} parsed as {other:?}"),
        }
    }
}

#[test]
fn unknown_library_and_cell_are_typed_errors() {
    let n = arb_netlist(7, 20, false);
    let text = codec::to_text(&n);
    let lib_line = text
        .lines()
        .find(|l| l.starts_with("library "))
        .expect("checkpoint names its library");
    let with_bad_lib = text.replacen(lib_line, "library mystery_pdk", 1);
    assert_eq!(
        codec::from_text(&with_bad_lib).err(),
        Some(CodecError::UnknownLibrary("mystery_pdk".into()))
    );

    let cell = n.library().cell(n.instance(InstId::from_index(0)).cell()).name.clone();
    let with_bad_cell = text.replacen(&format!(" {cell} "), " warp_core ", 1);
    assert_eq!(
        codec::from_text(&with_bad_cell).err(),
        Some(CodecError::UnknownCell("warp_core".into()))
    );
}

#[test]
fn truncation_dropping_whole_records_is_an_error() {
    let n = arb_netlist(3, 30, true);
    let text = codec::to_text(&n);
    // Cutting right after the header leaves the counts promising records
    // that never arrive.
    for keep_lines in [1, 3, 5] {
        let prefix: String = text
            .lines()
            .take(keep_lines)
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(
            matches!(codec::from_text(&prefix), Err(CodecError::Parse { .. })),
            "prefix of {keep_lines} lines must not parse"
        );
    }
}
