//! Cross-crate integration: the complete flow on every generator family,
//! at multiple nodes, with determinism and monotonicity checks.

use eda::core::{run_flow, FlowConfig};
use eda::netlist::generate;
use eda::tech::Node;

#[test]
fn flow_handles_every_generator_family() {
    let designs = vec![
        generate::ripple_carry_adder(8).unwrap(),
        generate::array_multiplier(4).unwrap(),
        generate::parity_tree(16).unwrap(),
        generate::equality_comparator(8).unwrap(),
        generate::switch_fabric(3, 2).unwrap(),
        generate::random_logic(generate::RandomLogicConfig {
            gates: 200,
            seed: 17,
            ..Default::default()
        })
        .unwrap(),
    ];
    for d in &designs {
        let report = run_flow(d, &FlowConfig::advanced_2016(Node::N28))
            .unwrap_or_else(|e| panic!("{} failed: {e}", d.name()));
        assert!(report.cell_area_um2 > 0.0, "{}", d.name());
        assert!(report.routed_wirelength > 0, "{}", d.name());
        assert!(report.litho_legal, "{}: decomposition must close", d.name());
    }
}

#[test]
fn flow_is_deterministic() {
    let d = generate::switch_fabric(3, 2).unwrap();
    let cfg = FlowConfig::advanced_2016(Node::N28);
    let a = run_flow(&d, &cfg).unwrap();
    let b = run_flow(&d, &cfg).unwrap();
    assert_eq!(a.cell_area_um2, b.cell_area_um2);
    assert_eq!(a.routed_wirelength, b.routed_wirelength);
    assert_eq!(a.hpwl_um, b.hpwl_um);
    assert_eq!(a.test_coverage, b.test_coverage);
}

#[test]
fn advanced_flow_dominates_basic_across_designs() {
    let designs = vec![
        generate::ripple_carry_adder(12).unwrap(),
        generate::parity_tree(24).unwrap(),
        generate::random_logic(generate::RandomLogicConfig {
            gates: 300,
            seed: 4,
            ..Default::default()
        })
        .unwrap(),
    ];
    let mut basic_area = 0.0;
    let mut adv_area = 0.0;
    for d in &designs {
        basic_area += run_flow(d, &FlowConfig::basic_2006(Node::N90)).unwrap().cell_area_um2;
        adv_area += run_flow(d, &FlowConfig::advanced_2016(Node::N90)).unwrap().cell_area_um2;
    }
    assert!(
        adv_area < basic_area * 0.85,
        "advanced should save well over 15% area: {adv_area:.0} vs {basic_area:.0}"
    );
}

#[test]
fn emerging_node_needs_more_masks_than_established() {
    let d = generate::parity_tree(16).unwrap();
    let at = |node| run_flow(&d, &FlowConfig::advanced_2016(node)).unwrap().masks;
    assert_eq!(at(Node::N28), 1, "28nm critical layer is single-patterned");
    assert!(at(Node::N10) >= 2, "10nm needs multi-patterning");
}

#[test]
fn scanless_flow_skips_dft_metrics() {
    let d = generate::parity_tree(8).unwrap();
    let mut cfg = FlowConfig::advanced_2016(Node::N28);
    cfg.scan = None;
    let r = run_flow(&d, &cfg).unwrap();
    assert_eq!(r.test_coverage, 0.0);
    assert_eq!(r.scan_wirelength_um, 0.0);
}
