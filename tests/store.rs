//! Persistent flow-store contract: round trips, damage tolerance, size
//! bounds, and queryable provenance.
//!
//! Mirrors the codec property suite (`tests/codec.rs`) one layer up: the
//! store must (1) round-trip arbitrary payloads across reopen, (2) degrade
//! truncation and byte corruption to misses or typed corrupt lookups —
//! never a panic, never a wrong payload, (3) hold its `max_bytes` bound
//! under concurrent server writers while preserving QoR, and (4) answer
//! provenance queries with a stable row format.

use eda::{
    run_flow, EvictionPolicy, FlowConfig, FlowRequest, FlowServer, FlowStore, Lookup, QorQuery,
    QorRow, Query, StageRow, Store, StoreConfig, Table,
};
use eda::netlist::generate;
use eda::tech::Node;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A scratch store directory, unique per test case and per process.
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("eda_store_{}_{tag}_{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Hostile payload alphabet: record markers, newlines, escapes, unicode.
/// Sampled token indices assemble into payload strings so the round-trip
/// property exercises every framing hazard the store format must survive.
const TOKENS: &[&str] = &[
    "a", "payload", " ", "\n", "%rec ", "%", "%%", "\t", "0", "行き先", "\u{1}", "::",
];

fn assemble(indices: &[usize]) -> String {
    indices.iter().map(|&i| TOKENS[i % TOKENS.len()]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary payloads (spaces, newlines, `%rec `, unicode) round-trip
    /// through put/get, survive a reopen, and later puts win.
    #[test]
    fn payloads_roundtrip_across_reopen(
        entries in collection::vec((any::<u64>(), collection::vec(0usize..12, 0..24)), 1..12),
        rewrite_toks in collection::vec(0usize..12, 0..12),
    ) {
        let entries: Vec<(u64, String)> =
            entries.iter().map(|(k, toks)| (*k, assemble(toks))).collect();
        let rewrite = assemble(&rewrite_toks);
        let dir = scratch("prop_rt");
        let cfg = StoreConfig::at(dir.join("flow.store"));
        {
            let store = FlowStore::open(&cfg).unwrap();
            for (key, payload) in &entries {
                store.put(Table::Sub, *key, payload).unwrap();
            }
            // Replace the first key: the newer record must win.
            store.put(Table::Sub, entries[0].0, &rewrite).unwrap();
        }
        let store = FlowStore::open(&cfg).unwrap();
        // Replay the puts in order: the last write to each key wins.
        let mut expected = std::collections::HashMap::new();
        for (key, payload) in &entries {
            expected.insert(*key, payload.clone());
        }
        expected.insert(entries[0].0, rewrite);
        for (key, want) in &expected {
            match store.get(Table::Sub, *key) {
                Lookup::Hit(p) => prop_assert_eq!(&p, want),
                other => prop_assert!(false, "key {key:x} should hit, got {other:?}"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Truncating the file at any byte loses at most the tail: every
    /// surviving key reads its exact original payload, every lost key is a
    /// clean miss, and opening never fails or panics.
    #[test]
    fn truncation_degrades_to_misses(
        payload_seed in 0u64..1000,
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = scratch("prop_trunc");
        let cfg = StoreConfig::at(dir.join("flow.store"));
        let keys: Vec<u64> = (0..8).map(|i| payload_seed.wrapping_mul(31).wrapping_add(i)).collect();
        {
            let store = FlowStore::open(&cfg).unwrap();
            for key in &keys {
                store.put(Table::Stage, *key, &format!("payload for {key:016x}\nline two")).unwrap();
            }
        }
        let bytes = std::fs::read(&cfg.path).unwrap();
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        std::fs::write(&cfg.path, &bytes[..cut]).unwrap();

        let store = FlowStore::open(&cfg).unwrap();
        for key in &keys {
            match store.get(Table::Stage, *key) {
                Lookup::Hit(p) => prop_assert_eq!(p, format!("payload for {key:016x}\nline two")),
                Lookup::Miss | Lookup::Evicted => {}
                Lookup::Corrupt(why) => prop_assert!(false, "truncation must not corrupt: {why}"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flipping any single byte never panics and never serves a wrong
    /// payload: each key reads its exact original bytes, a typed corrupt
    /// lookup, or a miss.
    #[test]
    fn byte_corruption_is_typed_never_wrong(
        flip_at_frac in 0.0f64..1.0,
        flip_bits in 1u8..=255,
    ) {
        let dir = scratch("prop_flip");
        let cfg = StoreConfig::at(dir.join("flow.store"));
        let keys: Vec<u64> = (10..16).collect();
        {
            let store = FlowStore::open(&cfg).unwrap();
            for key in &keys {
                store.put(Table::Sub, *key, &format!("stable payload {key}")).unwrap();
            }
        }
        let mut bytes = std::fs::read(&cfg.path).unwrap();
        let at = ((bytes.len() - 1) as f64 * flip_at_frac) as usize;
        bytes[at] ^= flip_bits;
        std::fs::write(&cfg.path, &bytes).unwrap();

        let store = FlowStore::open(&cfg).unwrap();
        for key in &keys {
            match store.get(Table::Sub, *key) {
                Lookup::Hit(p) => prop_assert_eq!(p, format!("stable payload {key}")),
                Lookup::Miss | Lookup::Evicted | Lookup::Corrupt(_) => {}
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn eviction_holds_the_bound_under_concurrent_server_writers() {
    // Many designs, several workers, one small store: every write path
    // (stage cache, sub-stage memo, provenance) runs concurrently, and the
    // file must end under `max_bytes` with every request's QoR intact.
    let dir = scratch("server_lru");
    let max_bytes = 48 * 1024;
    let store = StoreConfig::at(dir.join("flow.store")).with_max_bytes(max_bytes);
    assert_eq!(store.eviction, EvictionPolicy::Lru);

    let cfg = FlowConfig::advanced_2016(Node::N10);
    let designs: Vec<_> = (3..9)
        .map(|n| generate::ripple_carry_adder(n * 4).unwrap())
        .collect();
    let batch: Vec<FlowRequest> = designs
        .iter()
        .map(|d| FlowRequest::new(d.clone(), cfg.clone()))
        .collect();

    let server = FlowServer::builder().threads(4).store(store.clone()).build();
    let first = server.serve(batch.clone());
    assert_eq!(first.failed(), 0);
    let handle = FlowStore::open(&store).unwrap();
    assert!(
        handle.len_bytes() <= max_bytes,
        "store must stay under its bound (got {} > {max_bytes})",
        handle.len_bytes()
    );
    drop(handle);

    // Second pass over the same batch: whatever mix of hits, misses, and
    // evictions each request sees, the QoR must be bit-identical.
    let second = server.serve(batch);
    assert_eq!(second.failed(), 0);
    for (a, b) in first.responses.iter().zip(&second.responses) {
        let (ra, rb) = (a.report().unwrap(), b.report().unwrap());
        assert!(ra.same_qor(rb), "eviction must never move QoR ({})", a.design);
    }
    let handle = FlowStore::open(&store).unwrap();
    assert!(handle.len_bytes() <= max_bytes);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn provenance_queries_answer_run_history() {
    // Three runs — two of one design at different seeds, one of another —
    // then the query surface must reproduce the history newest-first.
    let dir = scratch("query");
    let store = StoreConfig::at(dir.join("flow.store"));
    let fabric = generate::switch_fabric(3, 3).unwrap();
    let parity = generate::parity_tree(16).unwrap();

    let mut cfg = FlowConfig::advanced_2016(Node::N10);
    cfg.threads = 1;
    cfg.store = Some(store.clone());
    let r1 = run_flow(&fabric, &cfg).unwrap();
    cfg.seed = 7;
    let r2 = run_flow(&fabric, &cfg).unwrap();
    let r3 = run_flow(&parity, &cfg).unwrap();

    let handle = FlowStore::open(&store).unwrap();
    let fabric_rows = handle
        .qor_history(&QorQuery { design: Some(fabric.name().into()), stage: None, last: 10 })
        .unwrap();
    assert_eq!(fabric_rows.len(), 2, "two fabric runs recorded");
    assert!(fabric_rows[0].seq > fabric_rows[1].seq, "newest first");
    assert_eq!(fabric_rows[0].qor_fp, r2.qor_fingerprint());
    assert_eq!(fabric_rows[1].qor_fp, r1.qor_fingerprint());
    assert_ne!(
        fabric_rows[0].cfg_fp, fabric_rows[1].cfg_fp,
        "different seeds run under different config fingerprints"
    );

    let all = handle.qor_history(&QorQuery::default()).unwrap();
    assert_eq!(all.len(), 3);
    assert_eq!(all[0].qor_fp, r3.qor_fingerprint());
    let last_one = handle.qor_history(&QorQuery { last: 1, ..QorQuery::default() }).unwrap();
    assert_eq!(last_one.len(), 1);
    assert_eq!(last_one[0].qor_fp, r3.qor_fingerprint());

    let route_rows = handle
        .stage_history(&QorQuery {
            design: Some(fabric.name().into()),
            stage: Some("7_route".into()),
            last: 0,
        })
        .unwrap();
    assert_eq!(route_rows.len(), 2);
    for row in &route_rows {
        assert_eq!(row.stage, "7_route");
        assert!(row.attempts >= 1);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn provenance_row_format_is_golden() {
    // The row payload is an on-disk format shared across runs and tools:
    // pin it byte-for-byte so accidental format drift fails loudly.
    let row = QorRow {
        seq: 42,
        design: "smoke design".into(),
        node: "10nm".into(),
        cfg_fp: 0x0123_4567_89ab_cdef,
        qor_fp: 0xfedc_ba98_7654_3210,
        wns_ps: -12.5,
        overflow: 3,
        hpwl_um: 1024.25,
        wall_s: 0.5,
        peak_rss_bytes: 1 << 20,
    };
    let payload = row.to_payload();
    assert_eq!(
        payload,
        "run smoke%20design 10nm 0123456789abcdef fedcba9876543210 c029000000000000 3 4090010000000000 3fe0000000000000 1048576"
    );
    assert_eq!(QorRow::parse(42, &payload), Some(row));

    let srow = StageRow {
        seq: 43,
        design: "smoke design".into(),
        stage: "7_route".into(),
        outcome: "degraded (2 attempts)".into(),
        attempts: 2,
        wall_s: 0.25,
    };
    let payload = srow.to_payload();
    assert_eq!(
        payload,
        "stage smoke%20design 7_route degraded%20(2%20attempts) 2 3fd0000000000000"
    );
    assert_eq!(StageRow::parse(43, &payload), Some(srow));
}
