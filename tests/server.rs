//! Flow-server contract: a batch served through the work-stealing pool is
//! bit-identical to running each request sequentially, at every worker
//! count; a fault in one request degrades only that request; and repeated
//! requests replay their siblings' stage-cache entries.
//!
//! Scheduling-shaped observables (which worker ran what, steal counts,
//! queue depths) may vary run to run — these tests only pin the invariants
//! the server promises: submission-order responses, `same_qor` against the
//! sequential runs, typed per-request errors, and cache accounting.

use eda_core::{
    run_flow, Fault, FaultPlan, FlowConfig, FlowError, FlowReport, FlowRequest, FlowServer,
    Metric, STAGES,
};
use eda_netlist::{generate, Netlist};
use eda_tech::Node;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A scratch cache directory, unique per test and per process.
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("eda_serve_{}_{tag}_{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn smoke_cfg() -> FlowConfig {
    let mut cfg = FlowConfig::advanced_2016(Node::N10);
    cfg.threads = 1;
    cfg
}

fn counter(report: &FlowReport, name: &str) -> u64 {
    match report.telemetry.metrics.get(name) {
        Some(Metric::Counter(n)) => *n,
        _ => 0,
    }
}

/// Three genuinely different smoke designs, plus their shared config.
fn mixed_batch() -> Vec<FlowRequest> {
    let cfg = smoke_cfg();
    vec![
        FlowRequest::new(generate::switch_fabric(3, 3).unwrap(), cfg.clone()),
        FlowRequest::new(generate::parity_tree(16).unwrap(), cfg.clone()),
        FlowRequest::new(generate::ripple_carry_adder(16).unwrap(), cfg),
    ]
}

/// The sequential ground truth for a batch: each request run on its own,
/// same config, no shared state.
fn sequential(requests: &[FlowRequest]) -> Vec<FlowReport> {
    requests
        .iter()
        .map(|r| run_flow(&r.design, &r.config).unwrap())
        .collect()
}

#[test]
fn batch_is_bit_identical_to_sequential_at_every_worker_count() {
    let requests = mixed_batch();
    let serial = sequential(&requests);
    let dir = scratch("workers");
    for workers in [1usize, 2, 4, 8] {
        let server = FlowServer::builder().threads(workers).workers(workers).cache_dir(&dir).build();
        let report = server.serve(requests.clone());
        assert_eq!(report.workers, workers.min(requests.len()));
        assert_eq!(report.responses.len(), requests.len());
        assert_eq!(report.failed(), 0);
        for (i, resp) in report.responses.iter().enumerate() {
            assert_eq!(resp.index, i, "responses come back in submission order");
            assert_eq!(resp.design, requests[i].design.name());
            let flow = resp.report().expect("request succeeded");
            assert!(
                flow.same_qor(&serial[i]),
                "request {i} at {workers} workers must match its sequential run"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_in_one_request_degrades_only_that_request() {
    let mut requests = mixed_batch();
    // Fail routing on every attempt for the middle request only: its
    // two-attempt budget exhausts and the request dies with a typed error.
    requests[1].config.fault_plan = Some(FaultPlan::new(7).with("route", None, Fault::Fail));
    let serial_ok = [
        run_flow(&requests[0].design, &requests[0].config).unwrap(),
        run_flow(&requests[2].design, &requests[2].config).unwrap(),
    ];

    let server = FlowServer::builder().threads(2).workers(2).build();
    let report = server.serve(requests);
    assert_eq!(report.failed(), 1, "exactly the faulted request fails");

    let failed = &report.responses[1];
    match failed.error().expect("the faulted request must fail") {
        FlowError::BudgetExhausted { stage, partial, .. } => {
            assert_eq!(*stage, "7_route");
            assert!(
                partial.statuses.contains_key("1_synthesis"),
                "the partial flow keeps the stages that finished before the fault"
            );
        }
        other => panic!("expected BudgetExhausted, got {other}"),
    }

    // The siblings are untouched: same QoR as their solo runs.
    let ok0 = report.responses[0].report().expect("request 0 unaffected");
    let ok2 = report.responses[2].report().expect("request 2 unaffected");
    assert!(ok0.same_qor(&serial_ok[0]));
    assert!(ok2.same_qor(&serial_ok[1]));
}

#[test]
fn repeated_request_replays_the_shared_cache() {
    // One worker executes the batch strictly in order, so the repeat is
    // guaranteed to find every entry its primary wrote: a full warm replay.
    let dir = scratch("warm");
    let design = generate::switch_fabric(3, 3).unwrap();
    let requests = vec![
        FlowRequest::new(design.clone(), smoke_cfg()).with_priority(1),
        FlowRequest::new(design, smoke_cfg()),
    ];
    let server = FlowServer::builder().threads(1).workers(1).cache_dir(&dir).build();
    let report = server.serve(requests);

    assert_eq!(report.failed(), 0);
    assert_eq!(report.steals, 0, "one worker has nobody to steal from");
    assert_eq!(
        report.cross_design_hits,
        STAGES.len() as u64,
        "the repeat must replay every stage from the primary's entries"
    );
    let primary = report.responses[0].report().unwrap();
    let repeat = report.responses[1].report().unwrap();
    assert_eq!(counter(primary, "cache.hits"), 0, "the primary runs cold");
    assert_eq!(counter(repeat, "cache.hits"), STAGES.len() as u64);
    assert!(primary.same_qor(repeat), "a cache replay is bit-identical");

    // The server snapshot carries the accounting and one span per request.
    match report.telemetry.metrics.get("cache.cross_design_hits") {
        Some(Metric::Counter(n)) => assert_eq!(*n, STAGES.len() as u64),
        other => panic!("expected a cross-design hit counter, got {other:?}"),
    }
    match report.telemetry.metrics.get("server.requests") {
        Some(Metric::Counter(n)) => assert_eq!(*n, 2),
        other => panic!("expected a request counter, got {other:?}"),
    }
    let request_spans = report
        .telemetry
        .spans
        .iter()
        .filter(|s| s.name.starts_with("request:"))
        .count();
    assert_eq!(request_spans, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_requests_sharing_a_checkpoint_dir_do_not_clobber() {
    // Regression: checkpoint paths used to be `<dir>/<design>.flowck`, so
    // two concurrent requests for the same design under different configs
    // overwrote each other's files — whichever finished last won, and the
    // loser's resume either failed with a fingerprint mismatch or restarted
    // cold. Paths are now namespaced by config fingerprint.
    let dir = scratch("ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    let design = generate::switch_fabric(3, 3).unwrap();
    let mut cfg_a = smoke_cfg();
    cfg_a.checkpoint_dir = Some(dir.clone());
    cfg_a.seed = 1;
    let mut cfg_b = smoke_cfg();
    cfg_b.checkpoint_dir = Some(dir.clone());
    cfg_b.seed = 2;

    let requests = vec![
        FlowRequest::new(design.clone(), cfg_a.clone()),
        FlowRequest::new(design.clone(), cfg_b.clone()),
    ];
    let server = FlowServer::builder().threads(2).workers(2).build();
    let report = server.serve(requests);
    assert_eq!(report.failed(), 0);

    let flowcks: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("flowck"))
        .collect();
    assert_eq!(
        flowcks.len(),
        2,
        "same design, different configs: each keeps its own checkpoint file, got {flowcks:?}"
    );

    // Each config resumes its *own* state: bit-identical to the concurrent
    // run, with nothing re-executed — a complete checkpoint leaves no stage
    // for the resumed run to perform, so it records no stage spans.
    for (cfg, resp) in [(&cfg_a, &report.responses[0]), (&cfg_b, &report.responses[1])] {
        let mut resume = cfg.clone();
        resume.resume = true;
        let resumed = run_flow(&design, &resume).unwrap();
        assert!(
            resumed.same_qor(resp.report().unwrap()),
            "resume under seed {} must replay its own checkpoint",
            cfg.seed
        );
        let reran = resumed
            .telemetry
            .spans
            .iter()
            .filter(|s| matches!(s.kind, eda_core::SpanKind::Stage))
            .count();
        assert_eq!(reran, 0, "a complete checkpoint resumes without re-running any stage");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stage_speedups_stay_within_wall_clock_bounds() {
    // Regression for the placer's 8+-worker super-unity projections: every
    // reported per-stage speedup must sit inside [1, threads granted to the
    // stage] — a projection can never beat the workers it ran on.
    let design = generate::switch_fabric(3, 3).unwrap();
    let mut cfg = FlowConfig::advanced_2016(Node::N10);
    cfg.threads = 8;
    let report = run_flow(&design, &cfg).unwrap();
    assert!(!report.stage_speedup.is_empty(), "parallel stages report speedups");
    for (stage, speedup) in &report.stage_speedup {
        let granted = report.stage_threads.get(stage).copied().unwrap_or(8) as f64;
        assert!(
            (1.0..=granted).contains(speedup),
            "{stage}: projected speedup {speedup:.3} outside [1, {granted}]"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Any batch of perturbed netlists: serving it matches running it.
    #[test]
    fn served_batch_matches_sequential_for_arbitrary_netlists(
        gates in 40usize..120,
        design_seed in 0u64..1_000,
        batch in 2usize..5,
    ) {
        let requests: Vec<FlowRequest> = (0..batch)
            .map(|i| {
                let design: Netlist = generate::random_logic(generate::RandomLogicConfig {
                    gates: gates + 7 * i,
                    seed: design_seed + i as u64,
                    ..Default::default()
                })
                .unwrap();
                FlowRequest::new(design, smoke_cfg())
            })
            .collect();
        let serial = sequential(&requests);
        let dir = scratch("prop");
        let server = FlowServer::builder().threads(4).cache_dir(&dir).build();
        let report = server.serve(requests);
        prop_assert_eq!(report.failed(), 0);
        for (i, resp) in report.responses.iter().enumerate() {
            let flow = resp.report().expect("request succeeded");
            prop_assert!(flow.same_qor(&serial[i]), "request {} diverged", i);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
