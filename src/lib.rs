//! Umbrella crate re-exporting every subsystem of the `eda` workspace.
//!
//! See [`eda_core`] for the integrated flow, and the individual subsystem
//! crates for the substrates it builds on.
//!
//! # Examples
//!
//! ```
//! use eda::netlist::Netlist;
//! let n = Netlist::new("top");
//! assert_eq!(n.name(), "top");
//! ```
pub use eda_core as core;
pub use eda_dft as dft;
pub use eda_par as par;
pub use eda_litho as litho;
pub use eda_logic as logic;
pub use eda_netlist as netlist;
pub use eda_place as place;
pub use eda_power as power;
pub use eda_route as route;
pub use eda_smart as smart;
pub use eda_sta as sta;
pub use eda_tech as tech;
