//! The `eda` facade: one crate, one namespace, the whole flow.
//!
//! Everything a downstream user needs lives at the crate root — running a
//! flow ([`run_flow`], [`FlowConfig`], [`FlowReport`], [`FlowError`]),
//! serving many designs through one flow ([`FlowServer`], [`FlowRequest`],
//! [`FlowResponse`]), and exporting telemetry ([`TelemetrySnapshot`] with
//! its `deterministic_text` / `chrome_trace_json` / `metrics_json` /
//! `folded_stacks` exports). The subsystem crates remain reachable under
//! their module aliases (`eda::netlist`, `eda::tech`, …) for anything not
//! re-exported.
//!
//! # Examples
//!
//! Run one design through the flow:
//!
//! ```
//! use eda::{run_flow, FlowConfig};
//! use eda::netlist::generate;
//! use eda::tech::Node;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = generate::ripple_carry_adder(8)?;
//! let cfg = FlowConfig::builder().name("quickstart").node(Node::N28).threads(1).build()?;
//! let report = run_flow(&design, &cfg)?;
//! assert!(report.cell_area_um2 > 0.0);
//! let _trace = report.telemetry.chrome_trace_json();
//! # Ok(())
//! # }
//! ```
//!
//! Serve a batch of designs through one server sharing a flow store:
//!
//! ```no_run
//! use eda::{FlowConfig, FlowRequest, FlowServer, StoreConfig};
//! use eda::netlist::generate;
//! use eda::tech::Node;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = FlowConfig::builder().node(Node::N28).build()?;
//! let batch = vec![
//!     FlowRequest::new(generate::parity_tree(8)?, cfg.clone()).with_priority(1),
//!     FlowRequest::new(generate::ripple_carry_adder(8)?, cfg),
//! ];
//! let store = StoreConfig::at("/tmp/eda-cache/flow.store");
//! let server = FlowServer::builder().threads(4).store(store).build();
//! let report = server.serve(batch);
//! assert_eq!(report.responses.len(), 2);
//! println!("{:.1} designs/s", report.throughput_per_s());
//! # Ok(())
//! # }
//! ```
//!
//! Run a flow against a persistent store, then query its QoR provenance —
//! the [`Store`] and [`Query`] traits are the typed surface over one
//! append-friendly file holding the stage cache, the sub-stage memo, and
//! the run history:
//!
//! ```
//! use eda::{run_flow, FlowConfig, FlowStore, QorQuery, Query, StoreConfig};
//! use eda::netlist::generate;
//! use eda::tech::Node;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dir = std::env::temp_dir().join(format!("eda-facade-{}", std::process::id()));
//! let store = StoreConfig::at(dir.join("flow.store"));
//!
//! let design = generate::ripple_carry_adder(8)?;
//! let cfg = FlowConfig::builder()
//!     .name("quickstart")
//!     .node(Node::N28)
//!     .threads(1)
//!     .store(store.clone())
//!     .build()?;
//! let report = run_flow(&design, &cfg)?;
//!
//! // Every completed run appended a provenance row keyed by the design's
//! // name; ask for the history.
//! let handle = FlowStore::open(&store)?;
//! let rows = handle.qor_history(&QorQuery {
//!     design: Some(design.name().into()),
//!     stage: None,
//!     last: 10,
//! })?;
//! assert_eq!(rows.len(), 1);
//! assert_eq!(rows[0].qor_fp, report.qor_fingerprint());
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

pub use eda_core as core;
pub use eda_dft as dft;
pub use eda_par as par;
pub use eda_litho as litho;
pub use eda_logic as logic;
pub use eda_netlist as netlist;
pub use eda_place as place;
pub use eda_power as power;
pub use eda_route as route;
pub use eda_smart as smart;
pub use eda_sta as sta;
pub use eda_tech as tech;

pub use eda_core::{
    run_flow, ConfigError, EvictionPolicy, Fault, FaultPlan, FlowConfig, FlowConfigBuilder,
    FlowError, FlowReport, FlowRequest, FlowResponse, FlowServer, FlowServerBuilder, FlowSession,
    FlowStore, FlowTuner, Lookup, Metric, PartialFlow, QorQuery, QorRow, Query, ServerReport,
    Span, SpanKind, StageRow, StageStatus, Store, StoreConfig, StoreError, Table, Telemetry,
    TelemetrySnapshot, STAGES,
};
