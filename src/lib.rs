//! The `eda` facade: one crate, one namespace, the whole flow.
//!
//! Everything a downstream user needs lives at the crate root — running a
//! flow ([`run_flow`], [`FlowConfig`], [`FlowReport`], [`FlowError`]),
//! serving many designs through one flow ([`FlowServer`], [`FlowRequest`],
//! [`FlowResponse`]), and exporting telemetry ([`TelemetrySnapshot`] with
//! its `deterministic_text` / `chrome_trace_json` / `metrics_json` /
//! `folded_stacks` exports). The subsystem crates remain reachable under
//! their module aliases (`eda::netlist`, `eda::tech`, …) for anything not
//! re-exported.
//!
//! # Examples
//!
//! Run one design through the flow:
//!
//! ```
//! use eda::{run_flow, FlowConfig};
//! use eda::netlist::generate;
//! use eda::tech::Node;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = generate::ripple_carry_adder(8)?;
//! let cfg = FlowConfig::builder().name("quickstart").node(Node::N28).threads(1).build()?;
//! let report = run_flow(&design, &cfg)?;
//! assert!(report.cell_area_um2 > 0.0);
//! let _trace = report.telemetry.chrome_trace_json();
//! # Ok(())
//! # }
//! ```
//!
//! Serve a batch of designs through one server sharing a stage cache:
//!
//! ```no_run
//! use eda::{FlowConfig, FlowRequest, FlowServer};
//! use eda::netlist::generate;
//! use eda::tech::Node;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = FlowConfig::builder().node(Node::N28).build()?;
//! let batch = vec![
//!     FlowRequest::new(generate::parity_tree(8)?, cfg.clone()).with_priority(1),
//!     FlowRequest::new(generate::ripple_carry_adder(8)?, cfg),
//! ];
//! let server = FlowServer::builder().threads(4).cache_dir("/tmp/eda-cache").build();
//! let report = server.serve(batch);
//! assert_eq!(report.responses.len(), 2);
//! println!("{:.1} designs/s", report.throughput_per_s());
//! # Ok(())
//! # }
//! ```

pub use eda_core as core;
pub use eda_dft as dft;
pub use eda_par as par;
pub use eda_litho as litho;
pub use eda_logic as logic;
pub use eda_netlist as netlist;
pub use eda_place as place;
pub use eda_power as power;
pub use eda_route as route;
pub use eda_smart as smart;
pub use eda_sta as sta;
pub use eda_tech as tech;

pub use eda_core::{
    run_flow, ConfigError, Fault, FaultPlan, FlowConfig, FlowConfigBuilder, FlowError,
    FlowReport, FlowRequest, FlowResponse, FlowServer, FlowServerBuilder, FlowSession,
    FlowTuner, Metric, PartialFlow, ServerReport, Span, SpanKind, StageStatus, Telemetry,
    TelemetrySnapshot, STAGES,
};
