//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this local crate
//! provides the exact API subset the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods `gen`,
//! `gen_bool` and `gen_range` — backed by xoshiro256++ seeded through
//! SplitMix64. Streams are deterministic and platform-independent; they do
//! not match upstream `rand`'s ChaCha-based `StdRng`, which is fine because
//! every consumer in this workspace treats the stream as an arbitrary seeded
//! source.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from an RNG's raw output.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 significant bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform draw over a `[lo, hi]` / `[lo, hi)` interval.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi]` when `inclusive`, else `[lo, hi)`.
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "empty range in gen_range");
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64, _inclusive: bool) -> f64 {
        assert!(lo < hi, "empty range in gen_range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample(self) < p
    }

    /// Uniform draw from a half-open or inclusive range.
    fn gen_range<T, RG: SampleRange<T>>(&mut self, range: RG) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation; guarantees a non-zero state.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-1i64..=1);
            assert!((-1..=1).contains(&w));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
