//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate provides the
//! API subset the workspace's benches use — `Criterion`, benchmark groups,
//! `BenchmarkId`, `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple adaptive wall-clock timer.
//!
//! Besides the human-readable line, every benchmark prints one
//! machine-readable line
//!
//! ```text
//! BENCHLINE <group>/<id> <seconds-per-iteration>
//! ```
//!
//! which `scripts/bench_flow.sh` parses to build `BENCH_parallel.json`.
//!
//! Filters passed on the command line (`cargo bench -- <substr>`) select
//! benchmarks by substring, as upstream does; `--bench`-style flags cargo
//! injects are ignored.

use std::time::Instant;

pub use std::hint::black_box;

/// Measurement campaign: holds the CLI filter.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter, sample_size: 30 }
    }
}

impl Criterion {
    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let keep = self.matches(id);
        let n = self.sample_size;
        if keep {
            run_one(id, n, f);
        }
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { crit: self, name: name.to_string(), sample_size: None }
    }

    /// Runs registered targets; kept for upstream API parity.
    pub fn final_summary(&mut self) {}

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    crit: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Records the per-iteration workload size; accepted for API parity.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().0);
        if self.crit.matches(&full) {
            let n = self.sample_size.unwrap_or(self.crit.sample_size);
            run_one(&full, n, f);
        }
        self
    }

    /// Benchmarks `f` under `group/id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

/// Workload-size annotation; accepted for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures to time the hot loop.
pub struct Bencher {
    samples: Vec<f64>,
    max_samples: usize,
}

impl Bencher {
    /// Times `f`, collecting up to the configured number of samples but
    /// stopping early once enough wall time has been spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call outside the timed region.
        black_box(f());
        let budget = 0.6;
        let start = Instant::now();
        for _ in 0..self.max_samples {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed().as_secs_f64());
            if start.elapsed().as_secs_f64() > budget {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, max_samples: usize, mut f: F) {
    let mut b = Bencher { samples: Vec::new(), max_samples: max_samples.max(1) };
    f(&mut b);
    if b.samples.is_empty() {
        // The closure never called iter(); time nothing.
        println!("{id:<50} (no measurement)");
        return;
    }
    b.samples.sort_by(|x, y| x.partial_cmp(y).expect("finite sample"));
    let median = b.samples[b.samples.len() / 2];
    let mean: f64 = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
    println!(
        "{id:<50} median {:>12} mean {:>12} ({} samples)",
        format_seconds(median),
        format_seconds(mean),
        b.samples.len()
    );
    println!("BENCHLINE {id} {median:.9e}");
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares a group-runner function over benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).0, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }

    #[test]
    fn harness_times_a_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("work", |b| {
            b.iter(|| {
                runs += 1;
                std::hint::black_box((0..1000u64).sum::<u64>())
            })
        });
        group.finish();
        assert!(runs >= 2, "warm-up plus at least one sample, got {runs}");
    }
}
