//! Offline stand-in for the `libc` crate: just the `clock_gettime` surface
//! the workspace's per-thread CPU clocks need, declared against the system
//! C library (Linux x86-64 ABI).

#![allow(non_camel_case_types)]

/// Clock identifier.
pub type clockid_t = i32;
/// Seconds component of a timespec.
pub type time_t = i64;
/// Nanoseconds component of a timespec (C `long`).
pub type c_long = i64;

/// `struct timespec` as the kernel expects it.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct timespec {
    /// Whole seconds.
    pub tv_sec: time_t,
    /// Nanoseconds in `[0, 1e9)`.
    pub tv_nsec: c_long,
}

/// Per-thread CPU-time clock (Linux).
pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 3;

/// Signal number (C `int`).
pub type c_int = i32;
/// Signal disposition: a `extern "C" fn(c_int)` pointer or `SIG_DFL`/`SIG_ERR`
/// cast to this type.
pub type sighandler_t = usize;

/// Termination request (POSIX).
pub const SIGTERM: c_int = 15;
/// `signal(2)` return value on failure.
pub const SIG_ERR: sighandler_t = usize::MAX;

extern "C" {
    /// POSIX `clock_gettime(2)`.
    pub fn clock_gettime(clk_id: clockid_t, tp: *mut timespec) -> i32;
    /// ISO C `signal(2)`: installs `handler` for `signum`, returning the
    /// previous disposition (or [`SIG_ERR`]). The handler must be
    /// async-signal-safe; the daemon's only sets an `AtomicBool`.
    pub fn signal(signum: c_int, handler: sighandler_t) -> sighandler_t;
    /// ISO C `raise(3)`: sends `sig` to the calling thread. Used by tests
    /// to exercise signal-triggered drain in-process.
    pub fn raise(sig: c_int) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cpu_clock_advances() {
        let read = || {
            let mut ts = timespec { tv_sec: 0, tv_nsec: 0 };
            // SAFETY: valid clock id and out-pointer.
            let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
            assert_eq!(rc, 0);
            ts.tv_sec as f64 + ts.tv_nsec as f64 * 1e-9
        };
        let t0 = read();
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_add(i).rotate_left(7);
        }
        assert!(std::hint::black_box(acc) != 1);
        assert!(read() >= t0);
    }
}
