//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset the workspace's property tests use: the [`proptest!`] macro
//! over `#[test]` functions with `arg in strategy` bindings, `any::<T>()`,
//! integer/float range strategies, tuple strategies,
//! [`collection::vec`], [`ProptestConfig::with_cases`], and the
//! `prop_assert*` macros. Sampling is seeded deterministically per test name
//! and case index; there is no shrinking — a failing case panics with its
//! case number so it can be replayed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Run-time configuration for one `proptest!` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` sampled inputs per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; we default lower to keep the offline
        // suite fast. Tests that care set `with_cases` explicitly.
        ProptestConfig { cases: 64 }
    }
}

/// A source of sampled values.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

/// Marker returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy producing arbitrary values of `T`.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_any!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:ident . $idx:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, StdRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for a `Vec` with element strategy `S` and a length sampled
    /// from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector of `element`-sampled values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Builds the deterministic RNG for one (test, case) pair.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, case_rng, Any, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares deterministic property tests.
///
/// Supports the upstream surface this workspace uses: an optional
/// `#![proptest_config(expr)]` header and `#[test]` functions whose
/// arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::case_rng(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __run = || -> Result<(), String> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    if let Err(msg) = __run() {
                        panic!("proptest case {} of {} failed: {}", __case, stringify!($name), msg);
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports the failing sampled case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// `assert_eq!` that reports the failing sampled case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err(format!("assertion failed: {:?} == {:?}", lhs, rhs));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err(format!("{}: {:?} != {:?}", format!($($fmt)+), lhs, rhs));
        }
    }};
}

/// `assert_ne!` that reports the failing sampled case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return Err(format!("assertion failed: {:?} != {:?}", lhs, rhs));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return Err(format!("{}: both {:?}", format!($($fmt)+), lhs, rhs));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_bounded(x in 3usize..10, y in -2i64..=2) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..=2).contains(&y), "y out of range: {}", y);
        }

        #[test]
        fn vectors_sized(v in collection::vec(any::<bool>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn tuples_compose(p in (0usize..4, any::<u64>())) {
            prop_assert!(p.0 < 4);
            prop_assert_eq!(p.1, p.1);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = any::<u64>().sample(&mut case_rng("t", 3));
        let b = any::<u64>().sample(&mut case_rng("t", 3));
        let c = any::<u64>().sample(&mut case_rng("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
