//! Looking backwards: the technology-node dashboard behind the panel's
//! opening claims — integration capacity, the power crossover, the
//! patterning ladder, cost, and where design starts actually happen.
//!
//! ```text
//! cargo run --example moores_law
//! ```

use eda::tech::{CostModel, DesignStartModel, Node, PatterningPlan};

fn main() {
    println!(
        "{:>7} {:>10} {:>9} {:>6} {:>11} {:>12} {:>11}",
        "node", "MTr/mm2", "capacity", "Vdd", "patterning", "mask set $", "starts %"
    );
    let starts = DesignStartModel::year_2016();
    for node in Node::ALL {
        let spec = node.spec();
        let plan = PatterningPlan::for_node(node);
        let masks = CostModel::new(node).mask_set_cost();
        println!(
            "{:>7} {:>10.2} {:>8.0}M {:>6.2} {:>11} {:>12.0} {:>10.1}%",
            node.to_string(),
            spec.density_mtr_per_mm2,
            node.integration_capacity(),
            spec.vdd_v,
            plan.scheme().to_string(),
            masks.usd,
            100.0 * starts.share(node)
        );
    }

    let growth = Node::N10.integration_capacity() / Node::N90.integration_capacity();
    println!(
        "\n90nm -> 10nm integration capacity: {growth:.0}x \
         (the abstract's \"two orders of magnitude\")"
    );
    println!(
        "design starts at 32/28nm and above: {:.0}% (Domic: \"more than 90%\"); \
         180nm alone: {:.0}% (\"more than 25%\")",
        100.0 * starts.share_at_or_above(Node::N28),
        100.0 * starts.share(Node::N180)
    );
    let m130 = CostModel::new(Node::N130);
    println!(
        "130nm 6->4 metal layers: {:.1}% wafer-cost saving (Domic: \"slashes 15-20%\")",
        100.0 * (1.0 - m130.wafer_cost_with_layers(4) / m130.wafer_cost_with_layers(6))
    );
}
