//! Macii's and Sawicki's new era: a heterogeneous IoT smart system —
//! holistic co-design vs. ad-hoc sequential integration, SiP vs. 3-D
//! packaging, and technology-node selection for energy autonomy.
//!
//! ```text
//! cargo run --example iot_smart_system
//! ```

use eda::smart::{
    battery_life_days, best_iot_node, codesign_flow, node_selection_sweep, package,
    sequential_flow, DutyCycle, PackageStyle, SmartSystem,
};
use eda::tech::Node;

fn main() {
    let duty = DutyCycle::new(0.01, 0.002);

    // --- the heterogeneous system itself ---
    let device = SmartSystem::reference_iot_node(Node::N65);
    println!(
        "reference IoT node: {} components across {} technologies, BOM ${:.2}",
        device.components.len(),
        device.technology_count(),
        device.bom_cost_usd()
    );

    // --- packaging: SiP vs 3-D stack ---
    let flat = package(&device, PackageStyle::Sip2d);
    let stacked = package(&device, PackageStyle::Stack3d);
    println!(
        "packaging: SiP {:.0} mm2 / ${:.2} assembly  vs  3-D {:.0} mm2 / ${:.2} ({} TSVs)",
        flat.footprint_mm2,
        flat.assembly_cost_usd,
        stacked.footprint_mm2,
        stacked.assembly_cost_usd,
        stacked.tsvs
    );

    // --- energy autonomy ---
    let life = battery_life_days(&device, &duty, 800.0, 0.0);
    let life_harvest = battery_life_days(&device, &duty, 800.0, 0.05);
    println!("battery:   {life:.0} days on a coin cell; with 50 uW harvesting: {life_harvest:.0} days");

    // --- node selection: the established-node sweet spot ---
    println!("\nMCU node sweep (cost vs battery life vs performance):");
    println!("{:>7} {:>10} {:>12} {:>8} {:>9}", "node", "cost $", "life days", "perf", "merit");
    for p in node_selection_sweep(&duty, 800.0, 0.0) {
        println!(
            "{:>7} {:>10.2} {:>12.0} {:>8.1} {:>9.1}",
            p.node.to_string(),
            p.mcu_cost_usd,
            p.battery_life_days,
            p.performance,
            p.merit
        );
    }
    let best = best_iot_node(&node_selection_sweep(&duty, 800.0, 0.0));
    println!(
        "-> best IoT merit at {best} (established = {}), matching Sawicki: \
         \"it does not require the next technology node\"",
        best.is_established()
    );

    // --- co-design vs sequential ---
    let seq = sequential_flow();
    let co = codesign_flow();
    println!("\nflow comparison (Macii's claim C13):");
    println!(
        "  sequential ad-hoc: ${:.2}/unit, {:.0} mm2, {:.0} days battery, {:.0} weeks TTM (2 rework spins)",
        seq.metrics.unit_cost_usd,
        seq.metrics.footprint_mm2,
        seq.metrics.battery_life_days,
        seq.metrics.time_to_market_weeks
    );
    println!(
        "  holistic co-design: ${:.2}/unit, {:.0} mm2, {:.0} days battery, {:.0} weeks TTM ({} configs explored)",
        co.metrics.unit_cost_usd,
        co.metrics.footprint_mm2,
        co.metrics.battery_life_days,
        co.metrics.time_to_market_weeks,
        co.evaluations
    );
}
