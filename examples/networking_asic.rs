//! Rossi's world: an ASIC for networking with 5× the switching activity of a
//! standard processor — hot spots, automatic decap insertion, and
//! placement-aware scan-chain reordering.
//!
//! ```text
//! cargo run --example networking_asic
//! ```

use eda::dft::{insert_scan, reorder_chains, scan_wirelength};
use eda::netlist::generate;
use eda::place::{place_global, CongestionMap, Die, GlobalConfig};
use eda::power::{analyze, insert_decaps, Activity, ActivityConfig, PowerConfig, PowerGrid};
use eda::tech::Node;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The switch fabric: every output port muxes every input port.
    let fabric = generate::switch_fabric(8, 8)?;
    println!(
        "switch fabric: {} instances, {} flops",
        fabric.num_instances(),
        fabric.flops().len()
    );

    // --- activity: networking traffic at 5x the standard workload ---
    let base = Activity::estimate(&fabric, &ActivityConfig::default())?;
    let traffic = base.scaled(5.0);
    let pcfg = PowerConfig { node: Node::N28, freq_mhz: 1000.0, ..Default::default() };
    let p_std = analyze(&fabric, &base, &pcfg);
    let p_net = analyze(&fabric, &traffic, &pcfg);
    println!(
        "power:    standard workload {:.2} mW -> networking traffic {:.2} mW ({:.1}x)",
        p_std.total_mw(),
        p_net.total_mw(),
        p_net.total_mw() / p_std.total_mw()
    );

    // --- hot spots and automatic decap insertion ---
    let die = Die::for_netlist(&fabric, 0.7);
    let placement = place_global(&fabric, die, &GlobalConfig::default());
    let mut grid = PowerGrid::build(&fabric, &placement, &traffic, &pcfg, 8);
    let limit = grid.peak_droop(Node::N28) * 0.4;
    let fixed = insert_decaps(&fabric, &mut grid, Node::N28, limit)?;
    println!(
        "pgrid:    {} hotspots -> {} after inserting {} decaps automatically",
        fixed.hotspots_before, fixed.hotspots_after, fixed.decaps_inserted
    );

    // --- scan chains: front-end order vs placement-aware reorder ---
    let scanned = insert_scan(&fabric, 4)?;
    let scan_die = Die::for_netlist(&scanned.netlist, 0.7);
    let scan_place = place_global(&scanned.netlist, scan_die, &GlobalConfig::default());
    let before = scan_wirelength(&scanned.chains, &scan_place);
    let reordered = reorder_chains(&scanned.chains, &scan_place);
    let after = scan_wirelength(&reordered, &scan_place);
    println!(
        "scan:     stitch wirelength {:.0} um (front-end order) -> {:.0} um (placement-aware, -{:.0}%)",
        before,
        after,
        100.0 * (1.0 - after / before)
    );

    // --- congestion impact of the scan stitching ---
    let cong = CongestionMap::build(&scanned.netlist, &scan_place, 8, 1e9);
    println!(
        "route:    peak routing demand {:.0} um/bin, average {:.0} um/bin",
        cong.max_demand(),
        cong.avg_demand()
    );
    Ok(())
}
