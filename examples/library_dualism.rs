//! Rossi's format-dualism complaint, demonstrated and remedied: the same
//! library characterization delivered in two different syntaxes (the
//! liberty-like and clf dialects), converted losslessly, driving the same
//! synthesis — with the result *formally verified* by BDD-based equivalence
//! checking (the "consistently verified throughout the design flow" ask).
//!
//! ```text
//! cargo run --example library_dualism
//! ```

use eda::logic::{check_equivalence, synthesize, EcVerdict, MapGoal, SynthesisEffort};
use eda::netlist::{generate, liberty, Library};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The technology provider characterizes once...
    let golden = Library::generic();

    // ...but must deliver twice (Rossi: "we had to duplicate the effort for
    // our IP deliveries").
    let as_liberty = liberty::write_liberty(&golden);
    let as_clf = liberty::write_clf(&golden);
    println!(
        "one library, two deliveries: liberty {} bytes, clf {} bytes",
        as_liberty.len(),
        as_clf.len()
    );

    // The remedy: one data model, provable lossless conversion.
    let converted = liberty::clf_to_liberty(&as_clf)?;
    assert_eq!(as_liberty, converted);
    println!("clf -> liberty conversion is byte-identical: the dualism is pure overhead");

    // Both deliveries drive identical synthesis results.
    let design = generate::alu(4)?;
    let lib_a = liberty::parse_liberty(&as_liberty)?;
    let lib_b = liberty::parse_clf(&as_clf)?;
    let out_a = synthesize(&design, lib_a, SynthesisEffort::Advanced2016, MapGoal::Area)?;
    let out_b = synthesize(&design, lib_b, SynthesisEffort::Advanced2016, MapGoal::Area)?;
    println!(
        "synthesis from either delivery: {:.1} um2 vs {:.1} um2",
        out_a.area_um2, out_b.area_um2
    );

    // And the mapped result is *formally* equivalent to the RTL — BDD-based
    // combinational equivalence, not just simulation.
    match check_equivalence(&design, &out_a.netlist, &[], &[], 1 << 20)? {
        EcVerdict::Equivalent => println!("formal EC: mapped netlist ≡ source design"),
        EcVerdict::Counterexample(cex) => {
            println!("formal EC found a bug! distinguishing input: {cex:?}")
        }
        EcVerdict::Inconclusive => println!("formal EC inconclusive (budget)"),
    }
    Ok(())
}
