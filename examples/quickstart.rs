//! Quickstart: run the decade-old and the advanced flow on the same design
//! and compare the reports.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use eda::core::{run_flow, FlowConfig};
use eda::netlist::generate;
use eda::tech::Node;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small mixed design: random control logic with registers.
    let design = generate::random_logic(generate::RandomLogicConfig {
        inputs: 24,
        outputs: 12,
        gates: 400,
        flop_fraction: 0.12,
        seed: 42,
    })?;
    println!("design `{}`: {} instances\n", design.name(), design.num_instances());

    let basic = run_flow(&design, &FlowConfig::basic_2006(Node::N90))?;
    println!("{basic}\n");

    let advanced = run_flow(&design, &FlowConfig::advanced_2016(Node::N90))?;
    println!("{advanced}\n");

    let area_gain = 100.0 * (1.0 - advanced.cell_area_um2 / basic.cell_area_um2);
    let power_gain = 100.0
        * (1.0
            - (advanced.dynamic_mw + advanced.leakage_mw)
                / (basic.dynamic_mw + basic.leakage_mw));
    println!("advanced vs basic: area {area_gain:.1}% better, power {power_gain:.1}% better");
    println!("(the panel's decade: \"we have improved advanced RTL synthesis results by 30%\")");
    Ok(())
}
