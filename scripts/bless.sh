#!/usr/bin/env bash
# Regenerate the golden snapshot (tests/golden/smoke.snap) after an
# intentional QoR or telemetry change, then verify it passes.
#
#   scripts/bless.sh
#
# Review the resulting diff like any other code change: every drifted line
# is a QoR or provenance delta the PR is claiming on purpose.
set -euo pipefail
cd "$(dirname "$0")/.."

BLESS=1 cargo test --release -q --test golden golden_snapshot -- --exact golden_snapshot_is_byte_stable_across_thread_counts
cargo test --release -q --test golden

echo "blessed tests/golden/smoke.snap:"
git diff --stat -- tests/golden/smoke.snap || true
