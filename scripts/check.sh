#!/usr/bin/env bash
# Tier-1 verification plus lint: the checks every PR must keep green.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
echo "check: tier-1 + clippy green"
