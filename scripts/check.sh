#!/usr/bin/env bash
# Tier-1 verification plus lint: the checks every PR must keep green.
set -euo pipefail
cd "$(dirname "$0")/.."

# --workspace so the eda-bench `experiments` binary the smokes below run is
# rebuilt too (a bare root build stops at the root package).
cargo build --release --workspace

# Run the full test suite (unit + integration + property + doc, every
# crate), keeping the per-binary summaries for the tally below.
test_log="$(mktemp)"
trap 'rm -f "$test_log"' EXIT
cargo test --workspace -q 2>&1 | tee "$test_log"

cargo clippy --all-targets -- -D warnings
# No panicking unwraps on user-reachable paths: the flow library and the
# experiments CLI carry crate-level deny(clippy::unwrap_used) attributes
# (test modules exempt); these invocations fail if one sneaks back in.
cargo clippy -p eda-core --lib -- -D warnings
cargo clippy -p eda-bench --bins -- -D warnings

# Supervised-flow smoke: deterministic fault injection across the flow,
# including the reproducibility self-check, at 4 worker threads.
./target/release/experiments --inject smoke --threads 4

# Telemetry smoke: `--trace` must emit parseable JSON (span tree + metrics)
# and a non-empty folded-stack file.
trace_dir="$(mktemp -d)"
trap 'rm -f "$test_log"; rm -rf "$trace_dir"' EXIT
./target/release/experiments --trace "$trace_dir/smoke.trace.json" --threads 4
python3 - "$trace_dir" <<'PY'
import json, sys, os
d = sys.argv[1]
trace = json.load(open(os.path.join(d, "smoke.trace.json")))
assert trace["traceEvents"], "trace has no events"
metrics = json.load(open(os.path.join(d, "smoke.trace.metrics.json")))
assert metrics, "metrics export is empty"
assert os.path.getsize(os.path.join(d, "smoke.trace.folded")) > 0, "folded stacks empty"
print(f"check: trace OK ({len(trace['traceEvents'])} spans, {len(metrics)} metrics)")
PY

# Flow-server smoke: a 4-request batch through the work-stealing server at
# a 4-thread budget must beat sequential by >= 1.5x with cross-design cache
# hits and bit-identical QoR (the tool itself asserts all three).
serve_cache="$(mktemp -d)"
trap 'rm -f "$test_log"; rm -rf "$trace_dir" "$serve_cache"' EXIT
./target/release/experiments serve --batch 4 --threads 4 --cache-dir "$serve_cache"

# Facade doc-tests: the crate-root examples in src/lib.rs (run_flow via the
# config builder + the flow-server batch) must keep compiling and passing.
cargo test --release -q --doc -p eda

# Incremental-flow smoke: cold run populates the stage cache, warm run must
# replay >= 8 stages with bit-identical QoR (the tool itself asserts both).
cache_dir="$(mktemp -d)"
trap 'rm -f "$test_log"; rm -rf "$trace_dir" "$serve_cache" "$cache_dir"' EXIT
./target/release/experiments --incremental --cache-dir "$cache_dir" --threads 4

# Poisoned-cache smoke: truncate one entry; the next run must report exactly
# one unreadable entry, fall back to recomputing that stage (never panic),
# and still finish with bit-identical QoR.
poisoned="$(ls "$cache_dir"/*.stage | head -1)"
head -c 20 "$poisoned" > "$poisoned.tmp" && mv "$poisoned.tmp" "$poisoned"
incr_log="$(./target/release/experiments --incremental --cache-dir "$cache_dir" --threads 4)"
printf '%s\n' "$incr_log" | grep -qx 'INCRLINE cold_errors 1' \
    || { echo "check: FAIL poisoned cache entry not surfaced as cache.errors=1" >&2
         printf '%s\n' "$incr_log" >&2; exit 1; }
printf '%s\n' "$incr_log" | grep -qx 'INCRLINE same_qor 1' \
    || { echo "check: FAIL QoR drifted after poisoned-cache recompute" >&2
         printf '%s\n' "$incr_log" >&2; exit 1; }
echo "check: poisoned cache entry recomputed, QoR intact"

# Golden snapshot in release: QoR + telemetry byte-stable across threads
# 1/2/4/8 and unchanged vs tests/golden/smoke.snap (re-bless: scripts/bless.sh).
cargo test --release -q --test golden

# Tally: sum the "test result:" lines from the debug suite run above.
awk '/^test result:/ { passed += $4; failed += $6 }
     END { printf "check: %d tests passed, %d failed across all binaries\n", passed, failed
           exit (failed > 0) }' "$test_log"
echo "check: tier-1 + clippy + unwrap gates + inject smoke + trace + serve + facade docs + incremental + golden green"
