#!/usr/bin/env bash
# Tier-1 verification plus lint: the checks every PR must keep green.
set -euo pipefail
cd "$(dirname "$0")/.."

# --workspace so the eda-bench `experiments` binary the smokes below run is
# rebuilt too (a bare root build stops at the root package).
cargo build --release --workspace

# Run the full test suite (unit + integration + property + doc, every
# crate), keeping the per-binary summaries for the tally below.
test_log="$(mktemp)"
trap 'rm -f "$test_log"' EXIT
cargo test --workspace -q 2>&1 | tee "$test_log"

cargo clippy --all-targets -- -D warnings
# No panicking unwraps on user-reachable paths: the flow library and the
# experiments CLI carry crate-level deny(clippy::unwrap_used) attributes
# (test modules exempt); these invocations fail if one sneaks back in.
cargo clippy -p eda-core --lib -- -D warnings
cargo clippy -p eda-bench --bins -- -D warnings

# Supervised-flow smoke: deterministic fault injection across the flow,
# including the reproducibility self-check, at 4 worker threads.
./target/release/experiments --inject smoke --threads 4

# Telemetry smoke: `--trace` must emit parseable JSON (span tree + metrics)
# and a non-empty folded-stack file.
trace_dir="$(mktemp -d)"
trap 'rm -f "$test_log"; rm -rf "$trace_dir"' EXIT
./target/release/experiments --trace "$trace_dir/smoke.trace.json" --threads 4
python3 - "$trace_dir" <<'PY'
import json, sys, os
d = sys.argv[1]
trace = json.load(open(os.path.join(d, "smoke.trace.json")))
assert trace["traceEvents"], "trace has no events"
metrics = json.load(open(os.path.join(d, "smoke.trace.metrics.json")))
assert metrics, "metrics export is empty"
assert os.path.getsize(os.path.join(d, "smoke.trace.folded")) > 0, "folded stacks empty"
print(f"check: trace OK ({len(trace['traceEvents'])} spans, {len(metrics)} metrics)")
PY

# Flow-server smoke: a 4-request batch through the work-stealing server at
# a 4-thread budget must beat sequential by >= 1.5x with cross-design cache
# hits and bit-identical QoR (the tool itself asserts all three). The
# throughput bar is wall-clock-sensitive, so a miss gets two retries, each
# with a fresh cold cache; QoR bit-identity is asserted on every attempt.
serve_cache="$(mktemp -d)"
trap 'rm -f "$test_log"; rm -rf "$trace_dir" "$serve_cache"' EXIT
serve_ok=0
for attempt in 1 2 3; do
    mkdir -p "$serve_cache/$attempt"
    if ./target/release/experiments serve --batch 4 --threads 4 \
            --cache-dir "$serve_cache/$attempt"; then
        serve_ok=1; break
    fi
    echo "check: serve smoke attempt $attempt missed a threshold; retrying on a cold cache" >&2
done
[ "$serve_ok" = 1 ] || { echo "check: FAIL serve smoke failed on all 3 attempts" >&2; exit 1; }

# Daemon smoke: serve on a temp socket (with a flow store bound), push a
# 4-request batch (one with an injected per-request stage fault) through the
# wire with the bit-identical replay self-check, query the QoR provenance
# over the wire, then a hostile client that drops its connection mid-stream,
# then drain. The daemon must verify every completed request, answer the
# query from its store, shed only the hostile connection, ack the drain, and
# exit 0.
daemon_dir="$(mktemp -d)"
daemon_pid=""
trap 'rm -f "$test_log"; rm -rf "$trace_dir" "$serve_cache" "$daemon_dir"
      [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true' EXIT
daemon_sock="$daemon_dir/flowd.sock"
./target/release/experiments daemon serve --socket "$daemon_sock" \
    --workers 2 --queue 4 --threads 4 \
    --store "$daemon_dir/flow.store" > "$daemon_dir/serve.log" 2>&1 &
daemon_pid=$!
for _ in $(seq 1 100); do [ -S "$daemon_sock" ] && break; sleep 0.1; done
[ -S "$daemon_sock" ] || { echo "check: FAIL daemon socket never appeared" >&2
                           cat "$daemon_dir/serve.log" >&2; exit 1; }
submit_log="$(./target/release/experiments daemon submit --socket "$daemon_sock" \
    --count 4 --inject '1:route=fail@1' --verify)"
printf '%s\n' "$submit_log" | grep -qx 'DAEMONLINE client_completed 4' \
    || { echo "check: FAIL daemon did not complete all 4 requests" >&2
         printf '%s\n' "$submit_log" >&2; exit 1; }
printf '%s\n' "$submit_log" | grep -qx 'DAEMONLINE verified 1' \
    || { echo "check: FAIL daemon answers diverged from solo replays" >&2
         printf '%s\n' "$submit_log" >&2; exit 1; }
# Provenance over the wire: the daemon answers `query` from its store on the
# reader thread (no flow worker). The three clean completions above (the
# faulted request runs storeless) must come back as QoR history rows.
query_log="$(./target/release/experiments daemon query --socket "$daemon_sock" --last 10)"
query_rows="$(printf '%s\n' "$query_log" | awk '/^QUERYLINE rows /{print $3}')"
[ "${query_rows:-0}" -ge 2 ] \
    || { echo "check: FAIL daemon query returned ${query_rows:-0} provenance rows (want >= 2)" >&2
         printf '%s\n' "$query_log" >&2; exit 1; }
hostile_log="$(./target/release/experiments daemon submit --socket "$daemon_sock" \
    --count 4 --xfault 'conn-drop@2')"
printf '%s\n' "$hostile_log" | grep -qx 'DAEMONLINE dropped 1' \
    || { echo "check: FAIL hostile client did not lose its connection" >&2
         printf '%s\n' "$hostile_log" >&2; exit 1; }
# Captured, not piped: grep -q would close the pipe early and SIGPIPE the
# stats printer.
drain_log="$(./target/release/experiments daemon shutdown --socket "$daemon_sock")"
printf '%s\n' "$drain_log" | grep -qx 'DAEMONLINE drained 1' \
    || { echo "check: FAIL daemon drain not acknowledged" >&2
         printf '%s\n' "$drain_log" >&2; exit 1; }
wait "$daemon_pid" \
    || { echo "check: FAIL daemon did not exit 0 after drain" >&2
         cat "$daemon_dir/serve.log" >&2; exit 1; }
daemon_pid=""
grep -q 'daemon drained cleanly' "$daemon_dir/serve.log" \
    || { echo "check: FAIL daemon log missing clean-drain line" >&2
         cat "$daemon_dir/serve.log" >&2; exit 1; }
echo "check: daemon verified batch + answered query ($query_rows rows) + shed hostile client + drained to exit 0"

# Facade doc-tests: the crate-root examples in src/lib.rs (run_flow via the
# config builder + the flow-server batch) must keep compiling and passing.
cargo test --release -q --doc -p eda

# Incremental-flow smoke against the flow store: cold run populates it, the
# warm run must replay >= 8 stages, and the one-AIG-pass edit run must
# replay >= 1 sub-stage memo entry (the stage cache alone replays 0 inside
# an edited synthesis stage) — all with bit-identical QoR (the tool itself
# asserts all of it; the greps below keep the sub-stage gate loud even if
# the tool's own thresholds drift).
cache_dir="$(mktemp -d)"
trap 'rm -f "$test_log"; rm -rf "$trace_dir" "$serve_cache" "$daemon_dir" "$cache_dir"' EXIT
store_file="$cache_dir/flow.store"
incr_log="$(./target/release/experiments incremental --store "$store_file" --threads 4)"
printf '%s\n' "$incr_log"
sub_hits="$(printf '%s\n' "$incr_log" | awk '/^INCRLINE edit_substage_hits /{print $3}')"
[ "${sub_hits:-0}" -ge 1 ] \
    || { echo "check: FAIL edited run replayed ${sub_hits:-0} sub-stage entries (want >= 1)" >&2
         exit 1; }
printf '%s\n' "$incr_log" | grep -qx 'INCRLINE edit_same_qor 1' \
    || { echo "check: FAIL edited-run QoR diverged from the uncached reference" >&2; exit 1; }

# Provenance-query smoke: the runs above must be answerable from the store.
query_log="$(./target/release/experiments query --store "$store_file" \
    --design xbar3x3 --metric wns --last 10)"
printf '%s\n' "$query_log"
qrows="$(printf '%s\n' "$query_log" | awk '/^QUERYLINE rows /{print $3}')"
[ "${qrows:-0}" -ge 2 ] \
    || { echo "check: FAIL store query returned ${qrows:-0} QoR rows (want >= 2 prior runs)" >&2
         exit 1; }

# Poisoned-store smoke: flip one byte inside the first stage-table record's
# payload; the next run must report exactly one unreadable entry, fall back
# to recomputing that stage (never panic), and still finish with
# bit-identical QoR.
python3 - "$store_file" <<'PY'
import sys
path = sys.argv[1]
data = bytearray(open(path, "rb").read())
pos = 0
while True:
    at = data.find(b"%rec ", pos)
    assert at >= 0, "no store records found"
    nl = data.index(b"\n", at)
    fields = bytes(data[at:nl]).split(b" ")
    if fields[1] == b"stage":
        data[nl + 1] ^= 0x01
        break
    pos = nl + int(fields[3]) + 1
open(path, "wb").write(bytes(data))
PY
incr_log="$(./target/release/experiments incremental --store "$store_file" --threads 4)"
printf '%s\n' "$incr_log" | grep -qx 'INCRLINE cold_errors 1' \
    || { echo "check: FAIL poisoned store record not surfaced as cache.errors=1" >&2
         printf '%s\n' "$incr_log" >&2; exit 1; }
printf '%s\n' "$incr_log" | grep -qx 'INCRLINE same_qor 1' \
    || { echo "check: FAIL QoR drifted after poisoned-store recompute" >&2
         printf '%s\n' "$incr_log" >&2; exit 1; }
echo "check: store smoke green (edit replayed $sub_hits sub-stage entries, query returned $qrows rows, poisoned record recomputed)"

# Mini-scale smoke: a 10^4-instance mesh fabric through the full scale-tier
# flow, serial and at 4 workers. The tool itself asserts all 11 stages
# complete, routing closes with zero overflow, QoR is bit-identical across
# thread counts, the SoA netlist beats the dense layout, windowed routing
# never materializes the dense grid, peak RSS stays under the budget, and —
# the region-partitioned-router gate — the projected route-stage speedup at
# 4 workers reaches at least 1.5x so the parallel-route regression can never
# silently return.
./target/release/experiments scale --instances 10000 --rss-budget-mb 512 --threads 4 \
    --route-speedup-floor 1.5

# Golden snapshot in release: QoR + telemetry byte-stable across threads
# 1/2/4/8 and unchanged vs tests/golden/smoke.snap (re-bless: scripts/bless.sh).
cargo test --release -q --test golden

# Tally: sum the "test result:" lines from the debug suite run above.
awk '/^test result:/ { passed += $4; failed += $6 }
     END { printf "check: %d tests passed, %d failed across all binaries\n", passed, failed
           exit (failed > 0) }' "$test_log"
echo "check: tier-1 + clippy + unwrap gates + inject smoke + trace + serve + daemon + facade docs + incremental + mini-scale + golden green"
