#!/usr/bin/env bash
# Tier-1 verification plus lint: the checks every PR must keep green.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
# No panicking unwraps on user-reachable paths: the flow library and the
# experiments CLI carry crate-level deny(clippy::unwrap_used) attributes
# (test modules exempt); these invocations fail if one sneaks back in.
cargo clippy -p eda-core --lib -- -D warnings
cargo clippy -p eda-bench --bins -- -D warnings
# Supervised-flow smoke: deterministic fault injection across the flow,
# including the reproducibility self-check, at 4 worker threads.
./target/release/experiments --inject smoke --threads 4
echo "check: tier-1 + clippy + unwrap gates + inject smoke green"
