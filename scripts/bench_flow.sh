#!/usr/bin/env bash
# Thread-scaling benchmark driver.
#
# Runs the Criterion benches for mapping/routing/atpg/opc at 1 and N worker
# threads and emits BENCH_parallel.json (kernel -> {serial_s, parallel_s,
# speedup}). Times are projected wall seconds derived from per-worker CPU
# clocks (see crates/par), so the numbers reflect a host with one dedicated
# core per worker even when this machine has fewer cores. Each bench emits
# its 1-thread and N-thread rows back-to-back in one process, so the ratio
# is not polluted by machine drift between separate invocations.
#
# Also runs the incremental-flow benchmark (`experiments incremental`):
# a cold, warm, and one-AIG-pass-edited smoke flow through the persistent
# flow store, emitted as BENCH_incremental.json (cold/warm/edit wall clocks,
# % of stages skipped, sub-stage memo hit rate on the edited replay, and the
# route kernel's serial-vs-parallel row for context). Fails loudly if the
# edited replay gets zero sub-stage hits or its QoR drifts from an uncached
# reference — the sub-stage cache regression gate.
#
# Also runs the flow-server benchmark (`experiments serve`): a 4-request
# batch through the work-stealing server over one shared stage cache vs the
# same requests run sequentially, emitted as BENCH_server.json (wall clocks,
# throughput, cross-design cache hits, steals, QoR bit-identity).
#
# Also runs the flow-daemon benchmark (`experiments daemon`): an 8-request
# batch against a 2-worker daemon with a queue high-water mark of 4 — a 2x
# overload, so admission control must shed with typed queue-full
# rejections — emitted as BENCH_daemon.json (throughput, p50/p95 latency,
# accepted/rejected/completed counts, bit-identity of every completion).
#
# Also runs the scale-tier benchmark (`experiments scale`): a 10^5-instance
# mesh fabric through all 11 stages serially and at N workers, emitted as
# BENCH_scale.json (per-stage wall clock and peak RSS, SoA-vs-dense netlist
# heap, windowed-vs-dense routing footprint, region-router counters,
# route_serial_s/route_parallel_s/route_speedup, QoR bit-identity). Parallel
# walls use the projected per-worker-CPU convention (see crates/par); the
# pass fails if the parallel route or flow is slower than serial. Override
# the design size with EDA_BENCH_SCALE_INSTANCES (e.g. 10000 for a quick
# pass).
#
# Usage: scripts/bench_flow.sh [N]    worker threads for the parallel pass
#                                     (default $EDA_BENCH_THREADS or 4)
#
# Exits non-zero if, at N >= 4 workers, fault-sim or OPC fall below the 2x
# combined-speedup floor this PR established.
set -euo pipefail
cd "$(dirname "$0")/.."

N="${1:-${EDA_BENCH_THREADS:-4}}"
OUT="BENCH_parallel.json"
BENCHES=(--bench mapping --bench routing --bench atpg --bench opc)

run() {
    # The "_par/" filter skips the wall-clock benches; the scaling rows print
    # one "BENCHLINE <kernel>_par/<threads> <seconds>" line each.
    EDA_BENCH_THREADS="$1" cargo bench -q -p eda-bench "${BENCHES[@]}" -- "_par/" \
        | grep '^BENCHLINE .*_par/'
}

echo "bench_flow: scaling pass (1 and $N workers per bench)" >&2
LINES="$(run "$N")"

printf '%s\n' "$LINES" | awk -v n="$N" '
    /^BENCHLINE/ {
        split($2, a, "_par/")
        kernel = a[1]; threads = a[2] + 0; secs = $3 + 0
        name = (kernel == "fault_sim") ? "fault-sim" \
             : (kernel == "map")       ? "mapping"   : kernel
        if (!(name in seen)) { seen[name] = 1; names[count++] = name }
        if (threads == 1) serial[name] = secs
        else              par[name] = secs
    }
    END {
        printf "{\n"
        for (i = 0; i < count; i++) {
            name = names[i]; s = serial[name]
            p = (name in par) ? par[name] : s   # N == 1: only serial rows exist
            sp = (p > 0) ? s / p : 0
            printf "  \"%s\": {\"serial_s\": %.6f, \"parallel_s\": %.6f, \"speedup\": %.2f}%s\n", \
                name, s, p, sp, (i < count - 1) ? "," : ""
            printf "bench_flow: %-10s %.2fx at %d workers\n", name, sp, n > "/dev/stderr"
        }
        printf "}\n"
        fail = 0
        if (n >= 4) {
            if (serial["fault-sim"] / par["fault-sim"] < 2.0) {
                print "bench_flow: FAIL fault-sim speedup < 2x" > "/dev/stderr"; fail = 1
            }
            if (serial["opc"] / par["opc"] < 2.0) {
                print "bench_flow: FAIL opc speedup < 2x" > "/dev/stderr"; fail = 1
            }
        }
        exit fail
    }
' > "$OUT"

echo "bench_flow: wrote $OUT" >&2
cat "$OUT"

# ---- incremental-flow benchmark -> BENCH_incremental.json ----
INCR_OUT="BENCH_incremental.json"
INCR_DIR="$(mktemp -d)"
trap 'rm -rf "$INCR_DIR"' EXIT

echo "bench_flow: incremental pass (cold + warm + edited smoke flow, $N workers)" >&2
cargo build -q --release -p eda-bench
INCR="$(./target/release/experiments incremental --store "$INCR_DIR/flow.store" --threads "$N" \
    | grep '^INCRLINE ')"

{ printf '%s\n' "$LINES" | grep '^BENCHLINE route_par/'; printf '%s\n' "$INCR"; } | awk '
    /^BENCHLINE route_par\// {
        split($2, a, "/")
        if (a[2] + 0 == 1) rs = $3 + 0; else rp = $3 + 0
    }
    /^INCRLINE/ { v[$2] = $3 + 0 }
    END {
        sub_total = v["edit_substage_hits"] + v["edit_substage_misses"]
        printf "{\n"
        printf "  \"cold_s\": %.6f,\n", v["cold_s"]
        printf "  \"warm_s\": %.6f,\n", v["warm_s"]
        printf "  \"warm_speedup\": %.1f,\n", (v["warm_s"] > 0) ? v["cold_s"] / v["warm_s"] : 0
        printf "  \"stages_total\": %d,\n", v["stages_total"]
        printf "  \"stages_skipped\": %d,\n", v["stages_skipped"]
        printf "  \"stages_skipped_pct\": %.1f,\n", 100.0 * v["stages_skipped"] / v["stages_total"]
        printf "  \"same_qor\": %s,\n", v["same_qor"] ? "true" : "false"
        printf "  \"edit_s\": %.6f,\n", v["edit_s"]
        printf "  \"edit_stage_hits\": %d,\n", v["edit_stage_hits"]
        printf "  \"edit_substage_hits\": %d,\n", v["edit_substage_hits"]
        printf "  \"edit_substage_misses\": %d,\n", v["edit_substage_misses"]
        printf "  \"edit_substage_hit_rate\": %.4f,\n", (sub_total > 0) ? v["edit_substage_hits"] / sub_total : 0
        printf "  \"edit_same_qor\": %s,\n", v["edit_same_qor"] ? "true" : "false"
        printf "  \"route\": {\"serial_s\": %.6f, \"parallel_s\": %.6f, \"speedup\": %.2f}\n", \
            rs, rp, (rp > 0) ? rs / rp : 0
        printf "}\n"
        # Sub-stage cache regression gate: the edited replay ran against a
        # fresh store, so synthesis recomputed and the per-pass memo must
        # have replayed at least one entry with unchanged QoR.
        if (v["edit_substage_hits"] < 1) {
            print "bench_flow: FAIL edited replay got zero sub-stage hits" > "/dev/stderr"
            exit 1
        }
        if (!v["edit_same_qor"]) {
            print "bench_flow: FAIL edited replay QoR drifted from uncached reference" > "/dev/stderr"
            exit 1
        }
    }
' > "$INCR_OUT"

echo "bench_flow: wrote $INCR_OUT" >&2
cat "$INCR_OUT"

# ---- flow-server benchmark -> BENCH_server.json ----
SERVE_OUT="BENCH_server.json"
SERVE_DIR="$(mktemp -d)"
trap 'rm -rf "$INCR_DIR" "$SERVE_DIR"' EXIT

echo "bench_flow: server pass (4-request batch, $N-thread budget)" >&2
# The tool's 1.5x throughput bar is wall-clock-sensitive: retry a miss up
# to twice, each attempt on a fresh cold cache (QoR asserted every time).
SERVE=""
for attempt in 1 2 3; do
    mkdir -p "$SERVE_DIR/$attempt"
    if OUT="$(./target/release/experiments serve --batch 4 --threads "$N" \
            --cache-dir "$SERVE_DIR/$attempt")"; then
        SERVE="$(printf '%s\n' "$OUT" | grep '^SERVLINE ')"
        break
    fi
    echo "bench_flow: serve attempt $attempt missed a threshold; retrying on a cold cache" >&2
done
[ -n "$SERVE" ] || { echo "bench_flow: FAIL serve pass failed on all 3 attempts" >&2; exit 1; }

printf '%s\n' "$SERVE" | awk '
    /^SERVLINE/ { v[$2] = $3 + 0 }
    END {
        printf "{\n"
        printf "  \"batch\": %d,\n", v["batch"]
        printf "  \"distinct_designs\": %d,\n", v["distinct"]
        printf "  \"workers\": %d,\n", v["workers"]
        printf "  \"kernel_threads\": %d,\n", v["kernel_threads"]
        printf "  \"sequential_s\": %.6f,\n", v["serial_s"]
        printf "  \"server_s\": %.6f,\n", v["server_s"]
        printf "  \"speedup\": %.2f,\n", v["speedup"]
        printf "  \"throughput_per_s\": %.3f,\n", v["throughput_per_s"]
        printf "  \"steals\": %d,\n", v["steals"]
        printf "  \"cross_design_hits\": %d,\n", v["cross_design_hits"]
        printf "  \"cross_hit_rate\": %.4f,\n", v["cross_hit_rate"]
        printf "  \"failed\": %d,\n", v["failed"]
        printf "  \"same_qor\": %s\n", v["same_qor"] ? "true" : "false"
        printf "}\n"
    }
' > "$SERVE_OUT"

echo "bench_flow: wrote $SERVE_OUT" >&2
cat "$SERVE_OUT"

# ---- flow-daemon benchmark -> BENCH_daemon.json ----
DAEMON_OUT="BENCH_daemon.json"
DAEMON_DIR="$(mktemp -d)"
DAEMON_PID=""
trap 'rm -rf "$INCR_DIR" "$SERVE_DIR" "$DAEMON_DIR"
      [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true' EXIT

echo "bench_flow: daemon pass (8 requests at 2x overload, 2 workers, queue 4)" >&2
DAEMON_SOCK="$DAEMON_DIR/flowd.sock"
./target/release/experiments daemon serve --socket "$DAEMON_SOCK" \
    --workers 2 --queue 4 --threads "$N" > "$DAEMON_DIR/serve.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do [ -S "$DAEMON_SOCK" ] && break; sleep 0.1; done
[ -S "$DAEMON_SOCK" ] || { echo "bench_flow: FAIL daemon socket never appeared" >&2
                           cat "$DAEMON_DIR/serve.log" >&2; exit 1; }
SUBMIT="$(./target/release/experiments daemon submit --socket "$DAEMON_SOCK" \
    --count 8 --verify | grep '^DAEMONLINE ')"
DRAIN="$(./target/release/experiments daemon shutdown --socket "$DAEMON_SOCK" \
    | grep '^DAEMONLINE ')"
wait "$DAEMON_PID" || { echo "bench_flow: FAIL daemon did not exit 0" >&2
                        cat "$DAEMON_DIR/serve.log" >&2; exit 1; }
DAEMON_PID=""

{ printf '%s\n' "$SUBMIT"; printf '%s\n' "$DRAIN"; } | awk '
    /^DAEMONLINE/ { v[$2] = $3 + 0 }
    END {
        printf "{\n"
        printf "  \"requests\": %d,\n", v["submitted"]
        printf "  \"workers\": 2,\n"
        printf "  \"queue_high_water\": 4,\n"
        printf "  \"wall_s\": %.6f,\n", v["wall_s"]
        printf "  \"throughput_per_s\": %.3f,\n", v["throughput_per_s"]
        printf "  \"p50_s\": %.6f,\n", v["p50_s"]
        printf "  \"p95_s\": %.6f,\n", v["p95_s"]
        printf "  \"accepted\": %d,\n", v["accepted"]
        printf "  \"rejected_full\": %d,\n", v["rejected_full"]
        printf "  \"completed\": %d,\n", v["completed"]
        printf "  \"failed\": %d,\n", v["failed"]
        printf "  \"qor_verified\": %s\n", v["verified"] ? "true" : "false"
        printf "}\n"
        if (v["accepted"] + v["rejected_full"] != v["submitted"]) {
            print "bench_flow: FAIL daemon lost a request (accepted + shed != submitted)" > "/dev/stderr"
            exit 1
        }
        if (!v["verified"]) {
            print "bench_flow: FAIL a daemon completion diverged from its solo replay" > "/dev/stderr"
            exit 1
        }
    }
' > "$DAEMON_OUT"

echo "bench_flow: wrote $DAEMON_OUT" >&2
cat "$DAEMON_OUT"

# ---- scale-tier benchmark -> BENCH_scale.json ----
SCALE_OUT="BENCH_scale.json"
SCALE_N="${EDA_BENCH_SCALE_INSTANCES:-100000}"

echo "bench_flow: scale pass ($SCALE_N instances, serial + $N workers)" >&2
SCALE="$(./target/release/experiments scale --instances "$SCALE_N" --threads "$N" \
    | grep -E '^SCALE(LINE|STAGE) ')"

printf '%s\n' "$SCALE" | awk '
    # ns must start as numeric 0: an uninitialized awk variable subscripts
    # arrays as the string "", which would orphan the first stage row.
    BEGIN { ns = 0 }
    /^SCALELINE/  { v[$2] = $3 + 0 }
    /^SCALESTAGE/ { stages[ns] = $2; wall[ns] = $3 + 0; rss[ns] = $4 + 0; ns++ }
    END {
        printf "{\n"
        printf "  \"instances\": %d,\n", v["instances"]
        printf "  \"nets\": %d,\n", v["nets"]
        printf "  \"generate_s\": %.6f,\n", v["generate_s"]
        printf "  \"soa_heap_bytes\": %d,\n", v["soa_heap_bytes"]
        printf "  \"dense_heap_bytes\": %d,\n", v["dense_heap_bytes"]
        printf "  \"soa_vs_dense\": %.3f,\n", v["soa_heap_bytes"] / v["dense_heap_bytes"]
        printf "  \"window_peak_cells\": %d,\n", v["window_peak_cells"]
        printf "  \"dense_grid_cells\": %d,\n", v["dense_grid_cells"]
        printf "  \"place_hpwl_um\": %d,\n", v["place_hpwl_um"]
        printf "  \"route_wirelength\": %d,\n", v["route_wirelength"]
        printf "  \"route_overflow\": %d,\n", v["route_overflow"]
        printf "  \"route_regions\": %d,\n", v["route_regions"]
        printf "  \"route_local_commits\": %d,\n", v["route_local_commits"]
        printf "  \"route_seam_conflicts\": %d,\n", v["route_seam_conflicts"]
        printf "  \"serial_s\": %.6f,\n", v["serial_s"]
        printf "  \"parallel_s\": %.6f,\n", v["parallel_s"]
        printf "  \"parallel_measured_s\": %.6f,\n", v["parallel_measured_s"]
        printf "  \"route_serial_s\": %.6f,\n", v["route_serial_s"]
        printf "  \"route_parallel_s\": %.6f,\n", v["route_parallel_s"]
        printf "  \"route_speedup\": %.3f,\n", v["route_speedup"]
        printf "  \"threads\": %d,\n", v["threads"]
        printf "  \"peak_rss_mb\": %d,\n", v["peak_rss_mb"]
        printf "  \"same_qor\": %s,\n", v["same_qor"] ? "true" : "false"
        printf "  \"stages\": {\n"
        for (i = 0; i < ns; i++)
            printf "    \"%s\": {\"wall_s\": %.6f, \"peak_rss_mb\": %d}%s\n", \
                stages[i], wall[i], rss[i], (i < ns - 1) ? "," : ""
        printf "  }\n"
        printf "}\n"
        if (v["route_overflow"] != 0) {
            print "bench_flow: FAIL scale tier left routing overflow" > "/dev/stderr"; exit 1
        }
        if (!v["same_qor"]) {
            print "bench_flow: FAIL scale-tier QoR diverged across thread counts" > "/dev/stderr"; exit 1
        }
        # The region-partitioned router exists to make parallel routing a
        # speedup; a projected route wall slower than serial is a regression.
        if (v["route_speedup"] <= 1.0) {
            printf "bench_flow: FAIL parallel route slower than serial (%.2fs vs %.2fs, %.2fx)\n", \
                v["route_parallel_s"], v["route_serial_s"], v["route_speedup"] > "/dev/stderr"; exit 1
        }
        if (v["parallel_s"] >= v["serial_s"]) {
            printf "bench_flow: FAIL projected parallel flow slower than serial (%.2fs vs %.2fs)\n", \
                v["parallel_s"], v["serial_s"] > "/dev/stderr"; exit 1
        }
    }
' > "$SCALE_OUT"

echo "bench_flow: wrote $SCALE_OUT" >&2
cat "$SCALE_OUT"
