#!/usr/bin/env bash
# Thread-scaling benchmark driver.
#
# Runs the Criterion benches for mapping/routing/atpg/opc at 1 and N worker
# threads and emits BENCH_parallel.json (kernel -> {serial_s, parallel_s,
# speedup}). Times are projected wall seconds derived from per-worker CPU
# clocks (see crates/par), so the numbers reflect a host with one dedicated
# core per worker even when this machine has fewer cores. Each bench emits
# its 1-thread and N-thread rows back-to-back in one process, so the ratio
# is not polluted by machine drift between separate invocations.
#
# Also runs the incremental-flow benchmark (`experiments --incremental`):
# a cold then warm smoke flow through the content-addressed stage cache,
# emitted as BENCH_incremental.json (cold/warm wall clocks, % of stages
# skipped, and the route kernel's serial-vs-parallel row for context).
#
# Also runs the flow-server benchmark (`experiments serve`): a 4-request
# batch through the work-stealing server over one shared stage cache vs the
# same requests run sequentially, emitted as BENCH_server.json (wall clocks,
# throughput, cross-design cache hits, steals, QoR bit-identity).
#
# Usage: scripts/bench_flow.sh [N]    worker threads for the parallel pass
#                                     (default $EDA_BENCH_THREADS or 4)
#
# Exits non-zero if, at N >= 4 workers, fault-sim or OPC fall below the 2x
# combined-speedup floor this PR established.
set -euo pipefail
cd "$(dirname "$0")/.."

N="${1:-${EDA_BENCH_THREADS:-4}}"
OUT="BENCH_parallel.json"
BENCHES=(--bench mapping --bench routing --bench atpg --bench opc)

run() {
    # The "_par/" filter skips the wall-clock benches; the scaling rows print
    # one "BENCHLINE <kernel>_par/<threads> <seconds>" line each.
    EDA_BENCH_THREADS="$1" cargo bench -q -p eda-bench "${BENCHES[@]}" -- "_par/" \
        | grep '^BENCHLINE .*_par/'
}

echo "bench_flow: scaling pass (1 and $N workers per bench)" >&2
LINES="$(run "$N")"

printf '%s\n' "$LINES" | awk -v n="$N" '
    /^BENCHLINE/ {
        split($2, a, "_par/")
        kernel = a[1]; threads = a[2] + 0; secs = $3 + 0
        name = (kernel == "fault_sim") ? "fault-sim" \
             : (kernel == "map")       ? "mapping"   : kernel
        if (!(name in seen)) { seen[name] = 1; names[count++] = name }
        if (threads == 1) serial[name] = secs
        else              par[name] = secs
    }
    END {
        printf "{\n"
        for (i = 0; i < count; i++) {
            name = names[i]; s = serial[name]
            p = (name in par) ? par[name] : s   # N == 1: only serial rows exist
            sp = (p > 0) ? s / p : 0
            printf "  \"%s\": {\"serial_s\": %.6f, \"parallel_s\": %.6f, \"speedup\": %.2f}%s\n", \
                name, s, p, sp, (i < count - 1) ? "," : ""
            printf "bench_flow: %-10s %.2fx at %d workers\n", name, sp, n > "/dev/stderr"
        }
        printf "}\n"
        fail = 0
        if (n >= 4) {
            if (serial["fault-sim"] / par["fault-sim"] < 2.0) {
                print "bench_flow: FAIL fault-sim speedup < 2x" > "/dev/stderr"; fail = 1
            }
            if (serial["opc"] / par["opc"] < 2.0) {
                print "bench_flow: FAIL opc speedup < 2x" > "/dev/stderr"; fail = 1
            }
        }
        exit fail
    }
' > "$OUT"

echo "bench_flow: wrote $OUT" >&2
cat "$OUT"

# ---- incremental-flow benchmark -> BENCH_incremental.json ----
INCR_OUT="BENCH_incremental.json"
INCR_DIR="$(mktemp -d)"
trap 'rm -rf "$INCR_DIR"' EXIT

echo "bench_flow: incremental pass (cold + warm smoke flow, $N workers)" >&2
cargo build -q --release -p eda-bench
INCR="$(./target/release/experiments --incremental --cache-dir "$INCR_DIR" --threads "$N" \
    | grep '^INCRLINE ')"

{ printf '%s\n' "$LINES" | grep '^BENCHLINE route_par/'; printf '%s\n' "$INCR"; } | awk '
    /^BENCHLINE route_par\// {
        split($2, a, "/")
        if (a[2] + 0 == 1) rs = $3 + 0; else rp = $3 + 0
    }
    /^INCRLINE/ { v[$2] = $3 + 0 }
    END {
        printf "{\n"
        printf "  \"cold_s\": %.6f,\n", v["cold_s"]
        printf "  \"warm_s\": %.6f,\n", v["warm_s"]
        printf "  \"warm_speedup\": %.1f,\n", (v["warm_s"] > 0) ? v["cold_s"] / v["warm_s"] : 0
        printf "  \"stages_total\": %d,\n", v["stages_total"]
        printf "  \"stages_skipped\": %d,\n", v["stages_skipped"]
        printf "  \"stages_skipped_pct\": %.1f,\n", 100.0 * v["stages_skipped"] / v["stages_total"]
        printf "  \"same_qor\": %s,\n", v["same_qor"] ? "true" : "false"
        printf "  \"route\": {\"serial_s\": %.6f, \"parallel_s\": %.6f, \"speedup\": %.2f}\n", \
            rs, rp, (rp > 0) ? rs / rp : 0
        printf "}\n"
    }
' > "$INCR_OUT"

echo "bench_flow: wrote $INCR_OUT" >&2
cat "$INCR_OUT"

# ---- flow-server benchmark -> BENCH_server.json ----
SERVE_OUT="BENCH_server.json"
SERVE_DIR="$(mktemp -d)"
trap 'rm -rf "$INCR_DIR" "$SERVE_DIR"' EXIT

echo "bench_flow: server pass (4-request batch, $N-thread budget)" >&2
SERVE="$(./target/release/experiments serve --batch 4 --threads "$N" --cache-dir "$SERVE_DIR" \
    | grep '^SERVLINE ')"

printf '%s\n' "$SERVE" | awk '
    /^SERVLINE/ { v[$2] = $3 + 0 }
    END {
        printf "{\n"
        printf "  \"batch\": %d,\n", v["batch"]
        printf "  \"distinct_designs\": %d,\n", v["distinct"]
        printf "  \"workers\": %d,\n", v["workers"]
        printf "  \"kernel_threads\": %d,\n", v["kernel_threads"]
        printf "  \"sequential_s\": %.6f,\n", v["serial_s"]
        printf "  \"server_s\": %.6f,\n", v["server_s"]
        printf "  \"speedup\": %.2f,\n", v["speedup"]
        printf "  \"throughput_per_s\": %.3f,\n", v["throughput_per_s"]
        printf "  \"steals\": %d,\n", v["steals"]
        printf "  \"cross_design_hits\": %d,\n", v["cross_design_hits"]
        printf "  \"cross_hit_rate\": %.4f,\n", v["cross_hit_rate"]
        printf "  \"failed\": %d,\n", v["failed"]
        printf "  \"same_qor\": %s\n", v["same_qor"] ? "true" : "false"
        printf "}\n"
    }
' > "$SERVE_OUT"

echo "bench_flow: wrote $SERVE_OUT" >&2
cat "$SERVE_OUT"
